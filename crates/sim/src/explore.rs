//! Interleaving exploration on top of [`SimRuntime`].
//!
//! Two modes, mirroring how one actually hunts concurrency bugs:
//!
//! * [`explore`] — breadth: run the same scenario under a range of seeds,
//!   each a different (but reproducible) interleaving, and collect every
//!   outcome. Assert the invariants that must hold for *all* seeds.
//! * [`explore_yield_kills`] — depth: first run the scenario unarmed to
//!   count the kill-capable yield points a victim hits inside one label's
//!   window, then re-run once per point with the victim killed exactly
//!   there. This is "kill at every instant of `Phase::FlushB`" made
//!   finite and exhaustive.

use crate::sim::SimRuntime;
use std::ops::Range;
use std::sync::Arc;

/// Run `scenario` once per seed in `seeds`, each on a fresh
/// [`SimRuntime`], and collect `(seed, outcome)` pairs. Any failing seed
/// reproduces by rerunning that seed alone.
pub fn explore<T>(
    seeds: Range<u64>,
    mut scenario: impl FnMut(u64, Arc<SimRuntime>) -> T,
) -> Vec<(u64, T)> {
    seeds
        .map(|seed| {
            let rt = SimRuntime::new(seed);
            let out = scenario(seed, rt);
            (seed, out)
        })
        .collect()
}

/// What [`explore_yield_kills`] found: one scenario outcome per
/// kill-capable yield point in the targeted window.
#[derive(Debug)]
pub struct YieldKillReport<T> {
    /// Number of kill-capable yield points the victim hit inside the
    /// window on the unarmed run — the size of the explored space.
    pub yield_points: u64,
    /// Outcome of the unarmed (fault-free) run.
    pub baseline: T,
    /// `(n, outcome)` for each armed run that killed the victim at the
    /// `n`th in-window yield, `n` in `1..=yield_points`.
    pub outcomes: Vec<(u64, T)>,
}

/// Kill `victim_node` at *every* kill-capable yield point inside
/// `label`'s window (a phase label like `"flush-b"`, or a probe label),
/// re-running `scenario` from scratch each time on a fresh
/// [`SimRuntime::new`]`(seed)`.
///
/// The unarmed recording run and the armed runs share the seed, and
/// arming consumes no randomness, so every armed run replays the
/// recording run's interleaving exactly up to the kill — the armed run
/// explores the *consequence* of dying there, not a different history.
///
/// Panics if the recording run hits no yield points inside the window:
/// an empty exploration would vacuously "pass".
pub fn explore_yield_kills<T>(
    seed: u64,
    victim_node: usize,
    label: &str,
    mut scenario: impl FnMut(Arc<SimRuntime>) -> T,
) -> YieldKillReport<T> {
    let rt = SimRuntime::new(seed);
    let baseline = scenario(Arc::clone(&rt));
    let yield_points = rt.yield_count(victim_node, label);
    assert!(
        yield_points > 0,
        "no kill-capable yield points for node {victim_node} in window '{label}' (seed {seed}): \
         nothing to explore"
    );
    let outcomes = (1..=yield_points)
        .map(|n| {
            let rt = SimRuntime::new(seed);
            rt.arm_yield_kill(victim_node, label, n);
            (n, scenario(rt))
        })
        .collect();
    YieldKillReport {
        yield_points,
        baseline,
        outcomes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{Runtime, YieldOutcome};
    use std::sync::Mutex;

    /// A two-task scenario: each task yields at "work" three times inside
    /// a "win" phase window; returns (interleaving trace, who died).
    fn scenario(rt: Arc<SimRuntime>) -> (Vec<usize>, Option<u64>) {
        let trace = Mutex::new(Vec::new());
        let died = Mutex::new(None);
        std::thread::scope(|scope| {
            rt.begin_world(&[0, 1]);
            for rank in 0..2usize {
                let rt = Arc::clone(&rt);
                let (trace, died) = (&trace, &died);
                scope.spawn(move || {
                    rt.task_enter(rank);
                    rt.phase_mark("win", true);
                    for i in 1..=3u64 {
                        trace.lock().unwrap().push(rank);
                        if rt.yield_now("work") == YieldOutcome::Killed {
                            *died.lock().unwrap() = Some(i);
                            break;
                        }
                    }
                    rt.phase_mark("win", false);
                    rt.task_exit(rank);
                });
            }
            rt.drive();
        });
        (trace.into_inner().unwrap(), died.into_inner().unwrap())
    }

    #[test]
    fn explore_runs_every_seed_reproducibly() {
        let a = explore(0..8, |_, rt| scenario(rt).0);
        let b = explore(0..8, |_, rt| scenario(rt).0);
        assert_eq!(a.len(), 8);
        assert_eq!(a, b, "same seeds, same interleavings");
        assert!(
            a.iter().any(|(_, t)| t != &a[0].1),
            "8 seeds should produce more than one interleaving"
        );
    }

    #[test]
    fn yield_kill_exploration_covers_every_point() {
        let rep = explore_yield_kills(11, 1, "win", scenario);
        assert_eq!(rep.yield_points, 3, "three in-window yields for node 1");
        assert_eq!(rep.baseline.1, None, "unarmed run kills nobody");
        for (n, (_, died)) in &rep.outcomes {
            assert_eq!(died, &Some(*n), "armed run {n} dies at exactly yield {n}");
        }
    }

    #[test]
    fn armed_runs_replay_the_recording_prefix() {
        let rep = explore_yield_kills(5, 0, "work", |rt| scenario(rt).0);
        for (n, trace) in &rep.outcomes {
            // the victim appears in the armed trace exactly as often as
            // in the baseline prefix up to its nth appearance
            let kills = *n as usize;
            let victim_hits = trace.iter().filter(|&&r| r == 0).count();
            assert_eq!(victim_hits, kills.min(3));
            // and the prefix up to the kill matches the baseline run
            let prefix_len = trace
                .iter()
                .enumerate()
                .filter(|(_, &r)| r == 0)
                .nth(kills - 1)
                .map(|(i, _)| i + 1)
                .unwrap();
            assert_eq!(trace[..prefix_len], rep.baseline[..prefix_len]);
        }
    }

    #[test]
    #[should_panic(expected = "nothing to explore")]
    fn empty_window_is_an_error_not_a_pass() {
        explore_yield_kills(0, 0, "no-such-window", scenario);
    }
}
