//! The scheduler's seeded RNG: splitmix64, the same tiny generator the
//! vendored proptest stand-in uses. One stream per [`SimRuntime`]
//! (crate::SimRuntime); every scheduling decision consumes exactly one
//! draw, so the interleaving is a pure function of the seed.

/// Deterministic splitmix64 stream.
#[derive(Clone, Debug)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// A stream seeded with `seed` (every seed is valid, including 0).
    pub fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, n)`. The modulo bias is irrelevant here: `n`
    /// is a runnable-task count (single digits) against a 64-bit draw.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty choice set");
        self.next_u64() % n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn below_stays_in_range() {
        let mut r = SplitMix64::new(7);
        for _ in 0..1000 {
            assert!(r.below(3) < 3);
        }
    }
}
