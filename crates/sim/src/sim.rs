//! The deterministic simulation runtime.
//!
//! One OS thread still backs each rank, but only one runs at a time: a
//! task executes until its next yield point (probe, send, blocking
//! receive), hands the token back, and a seeded RNG picks the next
//! runnable task. The interleaving — and with it every race the protocol
//! could see — is therefore a pure function of the seed.
//!
//! ## Virtual time
//!
//! The clock advances by a fixed [`QUANTUM`] per scheduling step, plus
//! whatever modeled costs the stack charges through
//! [`Runtime::advance`] (network transfer per send, the daemon's modeled
//! detection latency). No duration anywhere in a simulated run comes
//! from the wall clock, which is what makes reports byte-identical
//! across runs.
//!
//! ## Yield-point kills
//!
//! [`SimRuntime::arm_yield_kill`] kills a node's task at the `nth`
//! kill-capable yield inside a label's window — where a yield is "inside"
//! when either the task's current phase span (tracked from
//! `PhaseEnter`/`PhaseExit` marks) or the yield's own probe label matches.
//! Counts are also recorded on unarmed runs, so an explorer can first
//! measure how many yield points a phase has, then kill at each in turn
//! (see [`crate::explore_yield_kills`]).

use crate::rng::SplitMix64;
use crate::runtime::{Runtime, YieldOutcome};
use std::cell::Cell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// Virtual time charged per scheduling step. Big enough that every
/// simulated duration is visibly nonzero, small enough that simulated
/// runs stay in the milliseconds.
pub const QUANTUM: Duration = Duration::from_micros(1);

thread_local! {
    /// The rank whose task the current thread is running, if any.
    static CURRENT_RANK: Cell<Option<usize>> = const { Cell::new(None) };
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum TaskState {
    /// Thread not yet registered via `task_enter`.
    Spawned,
    /// Runnable, waiting for the token.
    Ready,
    /// Holds the token.
    Running,
    /// Blocked in a receive; needs `notify` to become runnable.
    Parked,
    /// Returned or unwound.
    Done,
}

struct Task {
    state: TaskState,
    node: usize,
    /// Current phase window (label of the innermost `PhaseEnter` not yet
    /// exited), used for targeted kills.
    phase: Option<&'static str>,
    /// Label of the most recent yield — the deadlock report's best clue.
    last_yield: String,
}

struct YieldKill {
    node: usize,
    label: String,
    nth: u64,
}

struct Sched {
    rng: SplitMix64,
    tasks: Vec<Task>,
    kill: Option<YieldKill>,
    /// Kill-capable yields seen, keyed label → node → count. Every yield
    /// is recorded under its own probe label and (when different) under
    /// the enclosing phase window's label.
    yields: HashMap<String, HashMap<usize, u64>>,
    steps: u64,
    /// Set when the scheduler panics (deadlock): parked tasks must wake
    /// and bail out instead of waiting forever.
    poisoned: bool,
    /// Gray-fault stall policy: when every live task is parked, advance
    /// the clock by this step and wake them (bounded by
    /// [`STALL_WAKE_LIMIT`]) instead of panicking. `None` keeps the
    /// strict deadlock panic.
    stall_wake: Option<Duration>,
    /// Stall-wakes taken in the current world (reset by `begin_world`).
    stalls: u64,
}

/// Upper bound on stall-wakes per world. A hung node's peers resolve the
/// stall via suspicion within a handful of heartbeat intervals; a genuine
/// deadlock that nothing can resolve hits this bound and still panics
/// with the task dump instead of spinning the virtual clock forever.
const STALL_WAKE_LIMIT: u64 = 100_000;

/// The deterministic cooperative scheduler. Construct with
/// [`SimRuntime::new`], hand to
/// `Cluster::new_with_runtime`, and run the world exactly as under real
/// threads — `run_on_cluster` routes spawning, receives, probes, and the
/// clock through here.
pub struct SimRuntime {
    sched: Mutex<Sched>,
    cv: Condvar,
    clock_ns: AtomicU64,
    seed: u64,
}

impl SimRuntime {
    /// A simulation scheduled by `seed`.
    pub fn new(seed: u64) -> Arc<Self> {
        Arc::new(SimRuntime {
            sched: Mutex::new(Sched {
                rng: SplitMix64::new(seed),
                tasks: Vec::new(),
                kill: None,
                yields: HashMap::new(),
                steps: 0,
                poisoned: false,
                stall_wake: None,
                stalls: 0,
            }),
            cv: Condvar::new(),
            clock_ns: AtomicU64::new(0),
            seed,
        })
    }

    /// The seed this simulation runs under.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Scheduling steps taken so far.
    pub fn steps(&self) -> u64 {
        self.lock().steps
    }

    /// Kill `node`'s task at the `nth` kill-capable yield whose probe
    /// label or enclosing phase window matches `label` (1-based, counted
    /// over the runtime's whole life, across relaunches). One-shot.
    pub fn arm_yield_kill(&self, node: usize, label: impl Into<String>, nth: u64) {
        let mut s = self.lock();
        s.kill = Some(YieldKill {
            node,
            label: label.into(),
            nth: nth.max(1),
        });
    }

    /// How many kill-capable yields `node`'s tasks have hit inside
    /// `label`'s window so far. Run the scenario once unarmed, read this,
    /// and you know the exact number of kill candidates a targeted
    /// explorer must cover.
    pub fn yield_count(&self, node: usize, label: &str) -> u64 {
        self.lock()
            .yields
            .get(label)
            .and_then(|per| per.get(&node))
            .copied()
            .unwrap_or(0)
    }

    fn lock(&self) -> MutexGuard<'_, Sched> {
        self.sched.lock().expect("sim scheduler lock poisoned")
    }

    fn tick(&self) {
        self.clock_ns
            .fetch_add(QUANTUM.as_nanos() as u64, Ordering::SeqCst);
    }

    /// Record a kill-capable yield of `rank` and decide whether the armed
    /// kill (if any) fires on it.
    fn note_yield(s: &mut Sched, rank: usize, label: &str) -> bool {
        let node = s.tasks[rank].node;
        let phase = s.tasks[rank].phase;
        if !s.yields.contains_key(label) {
            s.yields.insert(label.to_string(), HashMap::new());
        }
        let c_label = {
            let c = s
                .yields
                .get_mut(label)
                .expect("just inserted")
                .entry(node)
                .or_insert(0);
            *c += 1;
            *c
        };
        let c_phase = match phase {
            Some(p) if p != label => {
                if !s.yields.contains_key(p) {
                    s.yields.insert(p.to_string(), HashMap::new());
                }
                let c = s
                    .yields
                    .get_mut(p)
                    .expect("just inserted")
                    .entry(node)
                    .or_insert(0);
                *c += 1;
                Some(*c)
            }
            _ => None,
        };
        if let Some(k) = &s.kill {
            if k.node == node {
                let count = if k.label == label {
                    Some(c_label)
                } else if phase == Some(k.label.as_str()) {
                    c_phase
                } else {
                    None
                };
                if count == Some(k.nth) {
                    s.kill = None;
                    return true;
                }
            }
        }
        false
    }

    /// Block the calling task until the scheduler hands it the token.
    fn wait_for_token<'a>(
        &'a self,
        mut s: MutexGuard<'a, Sched>,
        rank: usize,
    ) -> MutexGuard<'a, Sched> {
        self.cv.notify_all();
        while s.tasks[rank].state != TaskState::Running {
            assert!(!s.poisoned, "sim scheduler poisoned (deadlock elsewhere)");
            s = self.cv.wait(s).expect("sim scheduler lock poisoned");
        }
        s
    }

    fn dump(s: &Sched) -> String {
        s.tasks
            .iter()
            .enumerate()
            .map(|(r, t)| {
                format!(
                    "  rank {r} (node {}): {:?}, phase {:?}, last yield '{}'",
                    t.node, t.state, t.phase, t.last_yield
                )
            })
            .collect::<Vec<_>>()
            .join("\n")
    }
}

impl Runtime for SimRuntime {
    fn is_sim(&self) -> bool {
        true
    }

    fn now(&self) -> Duration {
        Duration::from_nanos(self.clock_ns.load(Ordering::SeqCst))
    }

    fn advance(&self, d: Duration) {
        self.clock_ns.fetch_add(
            d.as_nanos().min(u128::from(u64::MAX)) as u64,
            Ordering::SeqCst,
        );
    }

    fn begin_world(&self, nodes: &[usize]) {
        let mut s = self.lock();
        assert!(
            s.tasks.iter().all(|t| t.state == TaskState::Done),
            "begin_world while a previous world still has live tasks"
        );
        s.tasks = nodes
            .iter()
            .map(|&node| Task {
                state: TaskState::Spawned,
                node,
                phase: None,
                last_yield: String::new(),
            })
            .collect();
        s.stalls = 0;
    }

    fn task_enter(&self, rank: usize) {
        CURRENT_RANK.with(|c| c.set(Some(rank)));
        let mut s = self.lock();
        assert_eq!(s.tasks[rank].state, TaskState::Spawned, "double task_enter");
        s.tasks[rank].state = TaskState::Ready;
        let _s = self.wait_for_token(s, rank);
    }

    fn task_exit(&self, rank: usize) {
        CURRENT_RANK.with(|c| c.set(None));
        let mut s = self.lock();
        s.tasks[rank].state = TaskState::Done;
        self.cv.notify_all();
    }

    fn drive(&self) {
        let mut s = self.lock();
        loop {
            if s.tasks.iter().all(|t| t.state == TaskState::Done) {
                return;
            }
            if s.tasks.iter().any(|t| t.state == TaskState::Running) {
                s = self.cv.wait(s).expect("sim scheduler lock poisoned");
                continue;
            }
            if s.tasks.iter().any(|t| t.state == TaskState::Spawned) {
                // don't pick until every thread has checked in: the set of
                // arrived tasks is timing-dependent, the full world is not
                s = self.cv.wait(s).expect("sim scheduler lock poisoned");
                continue;
            }
            let ready: Vec<usize> = s
                .tasks
                .iter()
                .enumerate()
                .filter(|(_, t)| t.state == TaskState::Ready)
                .map(|(r, _)| r)
                .collect();
            if ready.is_empty() {
                // Every live task is parked. Under a gray-fault stall
                // policy this is the hung-node case: let virtual time
                // pass and wake the waiters so they can poll suspicion.
                if let Some(step) = s.stall_wake {
                    if s.stalls < STALL_WAKE_LIMIT {
                        s.stalls += 1;
                        self.advance(step);
                        for t in &mut s.tasks {
                            if t.state == TaskState::Parked {
                                t.state = TaskState::Ready;
                            }
                        }
                        continue;
                    }
                }
                // nothing can wake them: a genuine deadlock
                s.poisoned = true;
                self.cv.notify_all();
                panic!(
                    "sim deadlock (seed {}): all tasks parked\n{}",
                    self.seed,
                    Self::dump(&s)
                );
            }
            let pick = ready[s.rng.below(ready.len() as u64) as usize];
            s.tasks[pick].state = TaskState::Running;
            s.steps += 1;
            self.tick();
            self.cv.notify_all();
        }
    }

    fn yield_now(&self, label: &str) -> YieldOutcome {
        let Some(rank) = CURRENT_RANK.with(|c| c.get()) else {
            return YieldOutcome::Continue;
        };
        let mut s = self.lock();
        if Self::note_yield(&mut s, rank, label) {
            // keep the token: the dying task must kill its node and
            // unwind atomically, exactly like a probe kill
            return YieldOutcome::Killed;
        }
        s.tasks[rank].state = TaskState::Ready;
        s.tasks[rank].last_yield.clear();
        s.tasks[rank].last_yield.push_str(label);
        let _s = self.wait_for_token(s, rank);
        YieldOutcome::Continue
    }

    fn park_blocked(&self) -> Option<YieldOutcome> {
        let rank = CURRENT_RANK.with(|c| c.get())?;
        let mut s = self.lock();
        if Self::note_yield(&mut s, rank, "recv-park") {
            return Some(YieldOutcome::Killed);
        }
        s.tasks[rank].state = TaskState::Parked;
        s.tasks[rank].last_yield.clear();
        s.tasks[rank].last_yield.push_str("recv-park");
        let _s = self.wait_for_token(s, rank);
        Some(YieldOutcome::Continue)
    }

    fn set_stall_wake(&self, step: Option<Duration>) {
        self.lock().stall_wake = step;
    }

    fn notify(&self) {
        let mut s = self.lock();
        for t in &mut s.tasks {
            if t.state == TaskState::Parked {
                t.state = TaskState::Ready;
            }
        }
        self.cv.notify_all();
    }

    fn phase_mark(&self, label: &'static str, enter: bool) {
        let Some(rank) = CURRENT_RANK.with(|c| c.get()) else {
            return;
        };
        let mut s = self.lock();
        if enter {
            s.tasks[rank].phase = Some(label);
        } else if s.tasks[rank].phase == Some(label) {
            s.tasks[rank].phase = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drive `n` tasks that yield `label` a few times each; returns the
    /// order in which (rank, yield-index) pairs were granted the token.
    fn run_world(seed: u64, n: usize, yields: usize) -> Vec<(usize, usize)> {
        let rt = SimRuntime::new(seed);
        let order = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            rt.begin_world(&(0..n).collect::<Vec<_>>());
            for rank in 0..n {
                let rt = Arc::clone(&rt);
                let order = &order;
                scope.spawn(move || {
                    rt.task_enter(rank);
                    for i in 0..yields {
                        order.lock().unwrap().push((rank, i));
                        assert_eq!(rt.yield_now("step"), YieldOutcome::Continue);
                    }
                    rt.task_exit(rank);
                });
            }
            rt.drive();
        });
        order.into_inner().unwrap()
    }

    #[test]
    fn same_seed_same_interleaving() {
        assert_eq!(run_world(3, 4, 8), run_world(3, 4, 8));
    }

    #[test]
    fn different_seeds_interleave_differently() {
        let runs: Vec<_> = (0..16).map(|s| run_world(s, 4, 8)).collect();
        assert!(
            runs.windows(2).any(|w| w[0] != w[1]),
            "16 seeds, 4 tasks, 8 yields: some pair must differ"
        );
    }

    #[test]
    fn virtual_clock_advances_per_step_and_by_advance() {
        let rt = SimRuntime::new(0);
        assert_eq!(rt.now(), Duration::ZERO);
        rt.advance(Duration::from_millis(5));
        assert_eq!(rt.now(), Duration::from_millis(5));
        std::thread::scope(|scope| {
            rt.begin_world(&[0]);
            let r = Arc::clone(&rt);
            scope.spawn(move || {
                r.task_enter(0);
                r.yield_now("a");
                r.task_exit(0);
            });
            rt.drive();
        });
        // two grants (enter + one yield) -> two quanta on top
        assert_eq!(rt.now(), Duration::from_millis(5) + 2 * QUANTUM);
    }

    #[test]
    fn armed_kill_fires_at_exact_yield() {
        let rt = SimRuntime::new(9);
        rt.arm_yield_kill(0, "probe", 3);
        let seen = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            rt.begin_world(&[0]);
            let r = Arc::clone(&rt);
            let seen = &seen;
            scope.spawn(move || {
                r.task_enter(0);
                for i in 1..=10 {
                    let out = r.yield_now("probe");
                    seen.lock().unwrap().push((i, out));
                    if out == YieldOutcome::Killed {
                        break;
                    }
                }
                r.task_exit(0);
            });
            rt.drive();
        });
        let seen = seen.into_inner().unwrap();
        assert_eq!(seen.len(), 3);
        assert_eq!(seen[2], (3, YieldOutcome::Killed));
        assert_eq!(rt.yield_count(0, "probe"), 3);
    }

    #[test]
    fn phase_window_attributes_yields_to_enclosing_phase() {
        let rt = SimRuntime::new(1);
        std::thread::scope(|scope| {
            rt.begin_world(&[7]);
            let r = Arc::clone(&rt);
            scope.spawn(move || {
                r.task_enter(0);
                r.yield_now("outside");
                r.phase_mark("win", true);
                r.yield_now("inner-a");
                r.yield_now("inner-b");
                r.phase_mark("win", false);
                r.yield_now("outside");
                r.task_exit(0);
            });
            rt.drive();
        });
        assert_eq!(rt.yield_count(7, "win"), 2, "two yields inside the window");
        assert_eq!(rt.yield_count(7, "inner-a"), 1);
        assert_eq!(rt.yield_count(7, "outside"), 2);
    }

    #[test]
    fn parked_task_wakes_on_notify() {
        let rt = SimRuntime::new(5);
        let got = Mutex::new(None);
        std::thread::scope(|scope| {
            rt.begin_world(&[0, 1]);
            let r0 = Arc::clone(&rt);
            let got = &got;
            scope.spawn(move || {
                r0.task_enter(0);
                // park until rank 1 notifies
                assert_eq!(r0.park_blocked(), Some(YieldOutcome::Continue));
                *got.lock().unwrap() = Some("woke");
                r0.task_exit(0);
            });
            let r1 = Arc::clone(&rt);
            scope.spawn(move || {
                r1.task_enter(1);
                r1.yield_now("spin");
                r1.notify();
                r1.task_exit(1);
            });
            rt.drive();
        });
        assert_eq!(got.into_inner().unwrap(), Some("woke"));
    }

    #[test]
    fn deadlock_panics_with_task_dump() {
        let err = std::panic::catch_unwind(|| {
            let rt = SimRuntime::new(0);
            std::thread::scope(|scope| {
                rt.begin_world(&[0]);
                let r = Arc::clone(&rt);
                scope.spawn(move || {
                    r.task_enter(0);
                    // park with nobody left to notify
                    let _ =
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| r.park_blocked()));
                    r.task_exit(0);
                });
                rt.drive();
            });
        })
        .unwrap_err();
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "?".into());
        assert!(msg.contains("sim deadlock"), "{msg}");
    }

    #[test]
    fn stall_wake_advances_clock_instead_of_deadlocking() {
        let rt = SimRuntime::new(0);
        let step = Duration::from_micros(200);
        rt.set_stall_wake(Some(step));
        let woke = Mutex::new(0u32);
        std::thread::scope(|scope| {
            rt.begin_world(&[0]);
            let r = Arc::clone(&rt);
            let woke = &woke;
            scope.spawn(move || {
                r.task_enter(0);
                // park repeatedly with nobody to notify: each wake must
                // be a stall-wake that advanced the virtual clock
                for _ in 0..3 {
                    assert_eq!(r.park_blocked(), Some(YieldOutcome::Continue));
                    *woke.lock().unwrap() += 1;
                }
                r.task_exit(0);
            });
            rt.drive();
        });
        assert_eq!(woke.into_inner().unwrap(), 3);
        assert!(
            rt.now() >= 3 * step,
            "stall-wakes advance time: {:?}",
            rt.now()
        );
    }
}
