#![warn(unused)]
//! # skt-sim — deterministic simulation for the rank world
//!
//! The paper claims self-checkpoint survives a node failure at *any*
//! instant. Real threads only sample the instants the host scheduler
//! happens to produce; this crate makes "any instant" a finite, seeded,
//! replayable space.
//!
//! * [`Runtime`] — the scheduling/time seam the mps world, cluster
//!   failure injector, and ftsim daemon run on. [`RealRuntime`] is
//!   today's behavior (preemptive threads, wall clock, every hook a
//!   no-op). [`SimRuntime`] serializes the same rank threads into
//!   cooperative tasks under a seeded RNG and a virtual clock, so a
//!   whole checkpoint/fail/recover cycle is a pure function of
//!   `(config, seed)`.
//! * [`Stopwatch`] — duration measurement on the runtime's clock, used
//!   by every report-producing layer instead of `Instant::now()`.
//! * [`explore`] / [`explore_yield_kills`] — the interleaving
//!   exploration harness: seed sweeps for breadth, kill-at-every-yield-
//!   point-of-a-phase for depth.
//!
//! This crate sits below `skt-cluster` (which re-exports the types upper
//! layers need) and depends on nothing but std.

mod explore;
mod rng;
mod runtime;
mod sim;

pub use explore::{explore, explore_yield_kills, YieldKillReport};
pub use rng::SplitMix64;
pub use runtime::{RealRuntime, Runtime, Stopwatch, YieldOutcome};
pub use sim::{SimRuntime, QUANTUM};
