//! The [`Runtime`] abstraction: where rank tasks get scheduled and where
//! time comes from.
//!
//! The rank world spawns one OS thread per rank. Under the default
//! [`RealRuntime`] those threads run genuinely in parallel and time is
//! the wall clock — today's behavior, untouched. Under
//! [`SimRuntime`](crate::SimRuntime) the same threads become cooperative
//! *tasks*: only one runs at a time, a seeded RNG picks which, and time
//! is a virtual clock advanced by the scheduler — so a whole
//! checkpoint/fail/recover cycle is a pure function of `(config, seed)`.
//!
//! Every hook has a no-op (or wall-clock) default so `RealRuntime` is the
//! trivial implementation and real-path overhead stays at one virtual
//! call per hook.

use std::sync::Arc;
use std::time::{Duration, Instant};

/// What a kill-capable yield point should do next.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum YieldOutcome {
    /// Keep running.
    Continue,
    /// An armed simulation kill fired on this task: the caller must kill
    /// its own node and return `Fault::NodeDead`, exactly like an armed
    /// `FailurePlan` firing at a probe.
    Killed,
}

/// Scheduling and time source for one cluster's rank world.
///
/// Implementations must be shareable across rank threads; all state is
/// behind `&self`. The contract for the task-side hooks
/// ([`Self::task_enter`] / [`Self::yield_now`] / [`Self::park_blocked`] /
/// [`Self::task_exit`]) is that they are called on the rank's own thread,
/// between [`Self::begin_world`] and the end of [`Self::drive`] on the
/// launching thread.
pub trait Runtime: Send + Sync {
    /// True for the deterministic simulation runtime.
    fn is_sim(&self) -> bool {
        false
    }

    /// Monotonic time since the runtime was created. Wall clock for the
    /// real runtime, the virtual clock under simulation.
    fn now(&self) -> Duration;

    /// Charge modeled time (network transfer, detection latency) to the
    /// clock. No-op in real time — modeled costs there are reported, not
    /// waited out — which keeps today's behavior.
    fn advance(&self, _d: Duration) {}

    /// Announce a world launch: `nodes[rank]` is the node hosting `rank`.
    /// Must be called on the launching thread before any task starts.
    fn begin_world(&self, _nodes: &[usize]) {}

    /// Register the calling thread as `rank`'s task. Under simulation
    /// this blocks until the scheduler grants the first time slice.
    fn task_enter(&self, _rank: usize) {}

    /// The task is done (normal return, fault, or unwinding panic).
    fn task_exit(&self, _rank: usize) {}

    /// Run the scheduler loop until every task of the current world is
    /// done. No-op in real time (the OS is the scheduler); under
    /// simulation the launching thread lends itself out here.
    fn drive(&self) {}

    /// Kill-capable yield point, labeled for the yield-point map (probe
    /// labels like `"ckpt-flush-b"`, or `"send"`). Under simulation the
    /// task gives up its slice and blocks until rescheduled; the return
    /// value says whether an armed kill chose this exact yield.
    fn yield_now(&self, _label: &str) -> YieldOutcome {
        YieldOutcome::Continue
    }

    /// A blocking receive found no message. Under simulation the task
    /// parks until [`Self::notify`] and reports `Some(outcome)`; the real
    /// runtime returns `None` and the caller falls back to its timed
    /// `recv_timeout` poll.
    fn park_blocked(&self) -> Option<YieldOutcome> {
        None
    }

    /// Wake every parked task (a message was delivered, or the job
    /// aborted). Cheap no-op in real time.
    fn notify(&self) {}

    /// Configure the stall policy for gray faults: when every live task
    /// is parked and `Some(step)` is set, the simulation scheduler
    /// advances the virtual clock by `step` and wakes the parked tasks —
    /// modeling the passage of time a hung node imposes on its waiting
    /// peers — instead of declaring deadlock. `None` (the default)
    /// restores the strict deadlock panic. No-op in real time, where the
    /// OS clock never stalls.
    fn set_stall_wake(&self, _step: Option<Duration>) {}

    /// A protocol phase boundary crossed on the calling task (forwarded
    /// from `Event::PhaseEnter`/`PhaseExit` by the cluster's bus
    /// observer). Defines the phase *window* targeted kills aim into.
    fn phase_mark(&self, _label: &'static str, _enter: bool) {}
}

/// Real threads, real time: the production runtime. Rank threads run
/// preemptively in parallel and every hook is a no-op.
pub struct RealRuntime {
    origin: Instant,
}

impl RealRuntime {
    /// A real-time runtime; `now()` counts from this call.
    pub fn new() -> Arc<Self> {
        Arc::new(RealRuntime {
            origin: Instant::now(),
        })
    }
}

impl Runtime for RealRuntime {
    fn now(&self) -> Duration {
        self.origin.elapsed()
    }
}

/// A started clock bound to a [`Runtime`] — the `Instant::now()` of the
/// runtime world. Layers that report durations (phase spans, recovery,
/// HPL compute time) use this so their reports are wall-clock under the
/// real runtime and bit-for-bit reproducible under simulation.
#[derive(Clone)]
pub struct Stopwatch {
    rt: Arc<dyn Runtime>,
    t0: Duration,
}

impl Stopwatch {
    /// Start a stopwatch on `rt`'s clock.
    pub fn start(rt: &Arc<dyn Runtime>) -> Self {
        Stopwatch {
            rt: Arc::clone(rt),
            t0: rt.now(),
        }
    }

    /// Time elapsed since [`Self::start`].
    pub fn elapsed(&self) -> Duration {
        self.rt.now().saturating_sub(self.t0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_runtime_tracks_wall_time() {
        let rt = RealRuntime::new();
        let a = rt.now();
        std::thread::sleep(Duration::from_millis(2));
        assert!(rt.now() > a);
        assert!(!rt.is_sim());
    }

    #[test]
    fn real_hooks_are_inert() {
        let rt = RealRuntime::new();
        rt.begin_world(&[0, 1]);
        rt.task_enter(0);
        assert_eq!(rt.yield_now("x"), YieldOutcome::Continue);
        assert_eq!(rt.park_blocked(), None);
        rt.notify();
        rt.set_stall_wake(Some(Duration::from_micros(100)));
        rt.advance(Duration::from_secs(5));
        rt.task_exit(0);
        rt.drive();
    }

    #[test]
    fn stopwatch_measures_on_the_runtime_clock() {
        let rt: Arc<dyn Runtime> = RealRuntime::new();
        let sw = Stopwatch::start(&rt);
        std::thread::sleep(Duration::from_millis(2));
        assert!(sw.elapsed() >= Duration::from_millis(2));
    }
}
