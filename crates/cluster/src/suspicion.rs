//! Heartbeat-based gray-failure suspicion.
//!
//! Fail-stop detection (PRs 4–8) is trivial on this cluster: a dead node
//! sets the job-abort flag. Gray failures don't — a straggler, a hang, or
//! a degraded link stalls collectives while every liveness bit still
//! reads "up". This module is the detector: a per-node heartbeat/progress
//! monitor on the [`Runtime`](skt_sim::Runtime) clock producing a
//! phi-accrual-style *suspicion score* per node, in the spirit of the
//! FTHP-MPI heartbeat layer (PAPERS.md) but deterministic, so seeded runs
//! reach bit-identical verdicts.
//!
//! ## The score
//!
//! Two signals feed a node's score, both in whole heartbeat intervals:
//!
//! * **Liveness lag** — time since the node's heartbeat daemon last
//!   beat. Healthy (and merely slow) nodes beat on schedule, so their lag
//!   is ~0; a hung node's daemon freezes with it, so its lag grows
//!   without bound. This is the classic phi-accrual signal.
//! * **Step slowness** — an EWMA of the node's *excess* per-step time
//!   (self-reported progress beacons: the extra virtual time a straggler
//!   charges per probe, or the extra transfer time a degraded link
//!   charges per send). Healthy peers waiting on a straggler report zero
//!   excess, so the score stays attributed to the culprit — waiting on a
//!   gray node never makes an innocent node suspect.
//!
//! `score = max(lag, slowness)`, and a node is *declared* suspect when
//! its score exceeds [`HeartbeatConfig::threshold`]. Declaration is
//! first-writer-wins and sticky until the next launch: every rank of the
//! job then returns the same typed [`Fault::Suspect`](crate::Fault)
//! verdict, which bounds how long a collective can stall on a gray peer.
//!
//! The EWMA uses α = 1/4 in integer nanoseconds, so detection points are
//! exact integer arithmetic — invariant across scheduler seeds for
//! probe-anchored gray plans.

use crate::cluster::NodeId;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::time::Duration;

/// Heartbeat emission/evaluation parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HeartbeatConfig {
    /// Nominal heartbeat interval on the runtime clock. Also the unit
    /// the suspicion score is measured in.
    pub interval: Duration,
    /// Score (whole intervals) above which a node is declared suspect.
    /// The detection timeout is therefore bounded:
    /// ~`(threshold + 1) × interval` for a hang.
    pub threshold: u32,
}

impl Default for HeartbeatConfig {
    /// 200 µs interval, threshold 8: a hang is declared within ~2 ms of
    /// virtual time; slowdown factors ≤ 8 are tolerated.
    fn default() -> Self {
        HeartbeatConfig {
            interval: Duration::from_micros(200),
            threshold: 8,
        }
    }
}

/// A declared suspicion verdict.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Suspicion {
    /// The suspect node.
    pub node: NodeId,
    /// Its score (whole intervals) at declaration time.
    pub score: u32,
}

/// What a management probe of a node reports (the service's
/// observe → probe step before deciding migration vs exoneration).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProbeVerdict {
    /// The node answers promptly and reports healthy.
    Responsive,
    /// The node answers but self-reports degradation (straggler or bad
    /// link); the label names the [`GrayKind`](crate::GrayKind).
    Degraded(&'static str),
    /// The node does not answer (hung or dead).
    Unresponsive,
}

#[derive(Clone, Copy, Debug, Default)]
struct NodeBeat {
    /// EWMA of excess per-step time, nanoseconds.
    ewma_ns: u64,
    /// When the node's heartbeat daemon froze (hang start), if it did.
    hung_since: Option<Duration>,
}

/// The per-cluster suspicion monitor. All methods are cheap and
/// lock-scoped; the cluster only consults it when suspicion is armed.
pub struct SuspicionMonitor {
    cfg: Mutex<HeartbeatConfig>,
    states: Mutex<BTreeMap<NodeId, NodeBeat>>,
}

impl Default for SuspicionMonitor {
    fn default() -> Self {
        Self::new(HeartbeatConfig::default())
    }
}

impl SuspicionMonitor {
    /// A monitor with the given parameters.
    pub fn new(cfg: HeartbeatConfig) -> Self {
        SuspicionMonitor {
            cfg: Mutex::new(cfg),
            states: Mutex::new(BTreeMap::new()),
        }
    }

    /// Current parameters.
    pub fn config(&self) -> HeartbeatConfig {
        *self.cfg.lock()
    }

    /// Replace the parameters (takes effect on the next evaluation).
    pub fn set_config(&self, cfg: HeartbeatConfig) {
        assert!(
            cfg.interval > Duration::ZERO,
            "heartbeat interval must be positive"
        );
        assert!(cfg.threshold >= 1, "suspicion threshold must be at least 1");
        *self.cfg.lock() = cfg;
    }

    /// Start a fresh observation window for `nodes` (a job launch):
    /// their slowness EWMAs reset to zero. Hang state is *not* cleared —
    /// it tracks the node, not the job, and is managed by the cluster's
    /// gray-fault bookkeeping.
    pub fn reset(&self, nodes: &[NodeId]) {
        let mut states = self.states.lock();
        for &n in nodes {
            let hung = states.get(&n).and_then(|b| b.hung_since);
            states.insert(
                n,
                NodeBeat {
                    ewma_ns: 0,
                    hung_since: hung,
                },
            );
        }
    }

    /// Record one progress beacon of `node` carrying `excess` extra
    /// virtual time over the nominal step cost (zero for a healthy
    /// step). Folds into the slowness EWMA with α = 1/4.
    pub fn sample(&self, node: NodeId, excess: Duration) {
        let excess_ns = excess.as_nanos().min(u128::from(u64::MAX)) as u64;
        let mut states = self.states.lock();
        let b = states.entry(node).or_default();
        b.ewma_ns = b.ewma_ns - b.ewma_ns / 4 + excess_ns / 4;
    }

    /// The node's heartbeat daemon froze at `since` (hang start).
    pub fn hang(&self, node: NodeId, since: Duration) {
        let mut states = self.states.lock();
        states.entry(node).or_default().hung_since = Some(since);
    }

    /// The node's heartbeat daemon resumed (hang healed).
    pub fn clear_hang(&self, node: NodeId) {
        if let Some(b) = self.states.lock().get_mut(&node) {
            b.hung_since = None;
        }
    }

    /// Drop all observation state for `node` (recommissioning).
    pub fn forget(&self, node: NodeId) {
        self.states.lock().remove(&node);
    }

    /// The node's suspicion score at `now`, in whole heartbeat
    /// intervals: `max(liveness lag, step slowness)`.
    pub fn score(&self, node: NodeId, now: Duration) -> u32 {
        let cfg = self.config();
        let interval_ns = cfg.interval.as_nanos().max(1) as u64;
        let states = self.states.lock();
        let Some(b) = states.get(&node) else {
            return 0;
        };
        let lag = match b.hung_since {
            Some(t) => {
                let lag_ns = now.saturating_sub(t).as_nanos().min(u128::from(u64::MAX)) as u64;
                lag_ns / interval_ns
            }
            None => 0,
        };
        let slowness = b.ewma_ns / interval_ns;
        lag.max(slowness).min(u64::from(u32::MAX)) as u32
    }

    /// The worst over-threshold node among `nodes` at `now`, lowest id
    /// winning ties — the deterministic declaration candidate. `None`
    /// when every node scores at or below the threshold.
    pub fn worst(&self, nodes: &[NodeId], now: Duration) -> Option<Suspicion> {
        let threshold = self.config().threshold;
        let mut verdict: Option<Suspicion> = None;
        for &n in nodes {
            let score = self.score(n, now);
            if score > threshold && verdict.is_none_or(|v| score > v.score) {
                verdict = Some(Suspicion { node: n, score });
            }
        }
        verdict
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const I: Duration = Duration::from_micros(200);

    fn monitor() -> SuspicionMonitor {
        SuspicionMonitor::new(HeartbeatConfig {
            interval: I,
            threshold: 8,
        })
    }

    #[test]
    fn healthy_nodes_score_zero() {
        let m = monitor();
        m.reset(&[0, 1]);
        for _ in 0..10 {
            m.sample(0, Duration::ZERO);
            m.sample(1, Duration::ZERO);
        }
        assert_eq!(m.score(0, Duration::from_millis(50)), 0);
        assert_eq!(m.worst(&[0, 1], Duration::from_millis(50)), None);
    }

    #[test]
    fn hang_lag_grows_with_time() {
        let m = monitor();
        m.reset(&[0]);
        m.hang(0, Duration::from_millis(1));
        assert_eq!(m.score(0, Duration::from_millis(1)), 0);
        // 9 intervals after the freeze the score crosses threshold 8
        assert_eq!(m.score(0, Duration::from_millis(1) + 9 * I), 9);
        let v = m.worst(&[0], Duration::from_millis(1) + 9 * I).unwrap();
        assert_eq!(v, Suspicion { node: 0, score: 9 });
        m.clear_hang(0);
        assert_eq!(m.score(0, Duration::from_secs(1)), 0, "healed");
    }

    #[test]
    fn slowness_ewma_crosses_threshold_after_two_heavy_samples() {
        let m = monitor();
        m.reset(&[3]);
        // factor-32 straggler: each probe charges 32 intervals of excess
        m.sample(3, 32 * I);
        assert_eq!(m.score(3, Duration::ZERO), 8, "one sample: at threshold");
        assert_eq!(m.worst(&[3], Duration::ZERO), None, "not over it yet");
        m.sample(3, 32 * I);
        assert!(m.score(3, Duration::ZERO) > 8, "two samples: over");
    }

    #[test]
    fn mild_slowness_is_tolerated_and_decays() {
        let m = monitor();
        m.reset(&[2]);
        for _ in 0..50 {
            m.sample(2, 4 * I); // factor-4 straggler, threshold 8
        }
        assert!(m.score(2, Duration::ZERO) <= 4);
        for _ in 0..20 {
            m.sample(2, Duration::ZERO); // healed: normal steps decay it
        }
        assert_eq!(m.score(2, Duration::ZERO), 0);
    }

    #[test]
    fn worst_prefers_higher_score_then_lower_id() {
        let m = monitor();
        m.reset(&[0, 1, 2]);
        m.hang(1, Duration::ZERO);
        m.hang(2, Duration::ZERO);
        let at = 20 * I;
        // equal scores: lowest id wins
        assert_eq!(m.worst(&[0, 1, 2], at).unwrap().node, 1);
        m.clear_hang(1);
        m.hang(1, 10 * I);
        // node 2 froze earlier, so it scores higher and wins
        assert_eq!(m.worst(&[0, 1, 2], at).unwrap().node, 2);
    }

    #[test]
    fn reset_clears_slowness_but_keeps_hang() {
        let m = monitor();
        m.reset(&[0]);
        m.sample(0, 100 * I);
        m.hang(0, Duration::ZERO);
        m.reset(&[0]);
        assert_eq!(
            m.score(0, 20 * I),
            20,
            "lag survives a relaunch; slowness does not"
        );
        m.forget(0);
        assert_eq!(m.score(0, 20 * I), 0);
    }
}
