//! Cross-crate observation bus.
//!
//! The checkpoint protocol is a state machine whose interesting behaviour —
//! which phase ran, how long the encode reduce took, how many bytes a flush
//! copied, which restore source a recovery picked — happens three crates
//! above this one. Rather than have every layer keep its own ad-hoc timing
//! fields, the layers *emit* [`Event`]s into an [`EventBus`] owned by the
//! [`Cluster`](crate::Cluster), and anyone interested (bench binaries, the
//! fault-tolerance daemon, tests) registers an [`Observer`].
//!
//! The bus sits in `skt-cluster` because it is the bottom of the crate
//! stack: `skt-mps` collectives and `skt-core`'s `Checkpointer` can both
//! reach it without a dependency cycle. Emission is cheap when nobody is
//! listening — a single relaxed atomic load guards every `emit`.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Something worth observing happened in the stack.
///
/// Labels are `&'static str` on purpose: phase identity lives in typed
/// enums upstream (`skt-core`'s `Phase`), and events carry that enum's
/// canonical label so observers never allocate on the hot path.
#[non_exhaustive]
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Event {
    /// A protocol phase began (label is the phase's canonical probe name).
    PhaseEnter {
        /// Canonical phase label, e.g. `"ckpt-encode"`.
        label: &'static str,
        /// Checkpoint epoch the phase works toward.
        epoch: u64,
    },
    /// A protocol phase finished.
    PhaseExit {
        /// Canonical phase label.
        label: &'static str,
        /// Checkpoint epoch the phase worked toward.
        epoch: u64,
        /// Wall-clock time spent inside the phase.
        elapsed: Duration,
    },
    /// A bulk copy moved checkpoint bytes between segments.
    BytesMoved {
        /// Phase label the copy belongs to.
        label: &'static str,
        /// Bytes copied.
        bytes: u64,
    },
    /// A collective (reduce/bcast/…) completed on some communicator.
    Collective {
        /// Operation name, e.g. `"reduce"`.
        op: &'static str,
        /// Payload size contributed by this rank, in bytes.
        bytes: u64,
        /// Wall-clock time this rank spent in the collective.
        elapsed: Duration,
    },
    /// A storage device accepted a blob.
    StorageWrite {
        /// Device kind name, e.g. `"hdd"`.
        device: &'static str,
        /// Blob size in bytes.
        bytes: u64,
        /// Modeled transfer time (not wall clock).
        modeled: Duration,
    },
    /// A storage device served a blob.
    StorageRead {
        /// Device kind name.
        device: &'static str,
        /// Blob size in bytes.
        bytes: u64,
        /// Modeled transfer time (not wall clock).
        modeled: Duration,
    },
    /// The fault injector flipped a bit in a node's SHM region (silent
    /// corruption — nothing aborts; the CRC/scrub layer must catch it).
    CorruptionInjected {
        /// Node whose memory was damaged.
        node: usize,
        /// Region suffix, e.g. `"b"`, `"c"`, `"header"`.
        region: &'static str,
    },
    /// The fault injector armed a gray fault on a node (it is now slow,
    /// hung, or sending over a degraded link — but still "alive").
    GrayInjected {
        /// Node degraded.
        node: usize,
        /// Gray kind label: `"slow"`, `"hang"`, `"link-degrade"`.
        kind: &'static str,
    },
    /// The suspicion monitor declared a node suspect (first declarer
    /// only; the verdict is sticky for the rest of the launch).
    SuspicionDeclared {
        /// The suspect node.
        node: usize,
        /// Suspicion score (whole heartbeat intervals) at declaration.
        score: u32,
    },
    /// A node was fenced: its generation was bumped and its SHM frozen,
    /// so stale writes from the old generation can never be merged.
    NodeFenced {
        /// The fenced node.
        node: usize,
        /// The new (post-bump) generation; in-flight work launched under
        /// an older generation is rejected.
        generation: u64,
    },
    /// A recovery chose its restore source (one event per recovering rank).
    RecoveryDecision {
        /// Restore-source name, e.g. `"checkpoint+checksum"`.
        source: &'static str,
        /// Epoch the job was restored to.
        epoch: u64,
        /// Bytes reconstructed from parity for the lost rank (0 when no
        /// rank was lost, i.e. a plain rollback).
        rebuilt_bytes: u64,
    },
}

/// A sink for [`Event`]s. All methods default to no-ops so observers
/// implement only what they care about.
pub trait Observer: Send + Sync {
    /// Called synchronously, on the emitting thread, for every event.
    fn on_event(&self, _event: &Event) {}
}

struct BusInner {
    /// Number of subscribed observers, readable without the lock so that
    /// `emit` on an idle bus costs one atomic load.
    active: AtomicUsize,
    sinks: Mutex<Vec<Arc<dyn Observer>>>,
}

/// Shared, clonable handle to the observation bus.
///
/// Cloning is cheap (an `Arc` bump); every layer that wants to emit holds
/// its own handle.
#[derive(Clone)]
pub struct EventBus {
    inner: Arc<BusInner>,
}

impl Default for EventBus {
    fn default() -> Self {
        Self::new()
    }
}

impl EventBus {
    /// A bus with no observers.
    pub fn new() -> Self {
        EventBus {
            inner: Arc::new(BusInner {
                active: AtomicUsize::new(0),
                sinks: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Register an observer; it receives every subsequent event.
    pub fn subscribe(&self, observer: Arc<dyn Observer>) {
        let mut sinks = self.inner.sinks.lock();
        sinks.push(observer);
        self.inner.active.store(sinks.len(), Ordering::Release);
    }

    /// Drop all observers.
    pub fn clear(&self) {
        let mut sinks = self.inner.sinks.lock();
        sinks.clear();
        self.inner.active.store(0, Ordering::Release);
    }

    /// True when at least one observer is subscribed. Emitters may use
    /// this to skip building expensive events.
    pub fn is_active(&self) -> bool {
        self.inner.active.load(Ordering::Acquire) != 0
    }

    /// Deliver an event to every observer (no-op when none subscribed).
    pub fn emit(&self, event: Event) {
        if !self.is_active() {
            return;
        }
        for sink in self.inner.sinks.lock().iter() {
            sink.on_event(&event);
        }
    }
}

/// An [`Observer`] that records every event, for tests and harness output.
#[derive(Default)]
pub struct Recorder {
    events: Mutex<Vec<Event>>,
}

impl Recorder {
    /// Empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot of everything recorded so far.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().clone()
    }

    /// Sum of [`Event::PhaseExit`] durations for one phase label.
    pub fn phase_total(&self, label: &str) -> Duration {
        self.events
            .lock()
            .iter()
            .filter_map(|e| match e {
                Event::PhaseExit {
                    label: l, elapsed, ..
                } if *l == label => Some(*elapsed),
                _ => None,
            })
            .sum()
    }

    /// Number of recorded events matching a predicate.
    pub fn count(&self, pred: impl Fn(&Event) -> bool) -> usize {
        self.events.lock().iter().filter(|e| pred(e)).count()
    }
}

impl Observer for Recorder {
    fn on_event(&self, event: &Event) {
        self.events.lock().push(event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_bus_drops_events() {
        let bus = EventBus::new();
        assert!(!bus.is_active());
        // must not panic or store anything
        bus.emit(Event::BytesMoved {
            label: "x",
            bytes: 1,
        });
    }

    #[test]
    fn subscribed_recorder_sees_events_in_order() {
        let bus = EventBus::new();
        let rec = Arc::new(Recorder::new());
        bus.subscribe(Arc::clone(&rec) as Arc<dyn Observer>);
        assert!(bus.is_active());
        bus.emit(Event::PhaseEnter {
            label: "p",
            epoch: 3,
        });
        bus.emit(Event::PhaseExit {
            label: "p",
            epoch: 3,
            elapsed: Duration::from_millis(2),
        });
        let evs = rec.events();
        assert_eq!(evs.len(), 2);
        assert!(matches!(evs[0], Event::PhaseEnter { epoch: 3, .. }));
        assert_eq!(rec.phase_total("p"), Duration::from_millis(2));
    }

    #[test]
    fn clear_unsubscribes_everyone() {
        let bus = EventBus::new();
        let rec = Arc::new(Recorder::new());
        bus.subscribe(Arc::clone(&rec) as Arc<dyn Observer>);
        bus.clear();
        assert!(!bus.is_active());
        bus.emit(Event::BytesMoved {
            label: "x",
            bytes: 1,
        });
        assert!(rec.events().is_empty());
    }

    #[test]
    fn clones_share_subscriptions() {
        let bus = EventBus::new();
        let handle = bus.clone();
        let rec = Arc::new(Recorder::new());
        bus.subscribe(Arc::clone(&rec) as Arc<dyn Observer>);
        handle.emit(Event::BytesMoved {
            label: "copy",
            bytes: 64,
        });
        assert_eq!(rec.count(|e| matches!(e, Event::BytesMoved { .. })), 1);
    }
}
