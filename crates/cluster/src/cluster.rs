//! The virtual cluster: node inventory, spare pool, rank placement, and
//! MPI-style whole-job abort on node failure.

use crate::events::{Event, EventBus, Observer};
use crate::failure::{
    CorruptPlan, FailureInjector, FailurePlan, Fault, FaultAction, FaultPlan, GrayKind, GrayPlan,
};
use crate::net::NetModel;
use crate::shm::{SegmentData, ShmStore};
use crate::storage::{Device, DeviceKind};
use crate::suspicion::{HeartbeatConfig, ProbeVerdict, Suspicion, SuspicionMonitor};
use parking_lot::Mutex;
use skt_sim::{RealRuntime, Runtime, Stopwatch};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Node identifier (index into the cluster's node tables).
pub type NodeId = usize;

/// Cluster shape.
#[derive(Clone, Copy, Debug)]
pub struct ClusterConfig {
    /// Compute nodes initially in the job's resource pool.
    pub nodes: usize,
    /// Additional spare nodes available to replace failures.
    pub spares: usize,
}

impl ClusterConfig {
    /// `nodes` compute nodes plus `spares` spares.
    pub fn new(nodes: usize, spares: usize) -> Self {
        assert!(nodes >= 1, "need at least one node");
        ClusterConfig { nodes, spares }
    }

    fn total(&self) -> usize {
        self.nodes + self.spares
    }
}

/// A node's current gray degradation (None = healthy).
#[derive(Clone, Copy, Debug)]
struct GrayState {
    kind: GrayKind,
    /// Virtual time at which the node spontaneously recovers; evaluated
    /// lazily by [`Cluster::gray_kind`].
    heal_at: Option<Duration>,
}

/// The virtual cluster. One instance outlives many job launches — that is
/// the point: node SHM persists across job aborts.
pub struct Cluster {
    config: ClusterConfig,
    shm: Vec<ShmStore>,
    hdd: Vec<Device>,
    ssd: Vec<Device>,
    pfs: Device,
    alive: Mutex<Vec<bool>>,
    spare_pool: Mutex<Vec<NodeId>>,
    job_abort: AtomicBool,
    injector: FailureInjector,
    net: NetModel,
    events: EventBus,
    runtime: Arc<dyn Runtime>,
    /// Per-node gray degradation state (straggler / hang / bad link).
    gray: Mutex<Vec<Option<GrayState>>>,
    /// Per-node fencing generation. Bumped by [`Self::fence_node`]; work
    /// launched under an older generation is a zombie and gets rejected.
    generation: Mutex<Vec<u64>>,
    /// Per-node fenced flag: fenced nodes are alive but quarantined —
    /// unusable for placement, their SHM frozen.
    fenced: Mutex<Vec<bool>>,
    /// Heartbeat/suspicion monitor (consulted only when armed).
    monitor: SuspicionMonitor,
    /// Whether the suspicion layer is armed (a gray plan was armed or a
    /// heartbeat config was set explicitly).
    suspicion_on: AtomicBool,
    /// Nodes the current job runs on — the suspicion evaluation set.
    watched: Mutex<Vec<NodeId>>,
    /// First declared suspicion verdict of the current launch (sticky
    /// until [`Self::reset_abort`]); every rank echoes this one verdict
    /// so outcomes are seed-invariant even though scores are not.
    verdict: Mutex<Option<Suspicion>>,
}

/// Bus observer that forwards protocol phase boundaries to the runtime,
/// giving the simulation scheduler its per-task phase windows (what
/// "kill the victim inside `FlushB`" targets).
struct SimPhaseTracker {
    rt: Arc<dyn Runtime>,
}

impl Observer for SimPhaseTracker {
    fn on_event(&self, event: &Event) {
        match *event {
            Event::PhaseEnter { label, .. } => self.rt.phase_mark(label, true),
            Event::PhaseExit { label, .. } => self.rt.phase_mark(label, false),
            _ => {}
        }
    }
}

impl Cluster {
    /// Build a cluster on real threads and the wall clock. Node ids
    /// `0..nodes` start in the job pool; ids `nodes..nodes+spares` start
    /// in the spare pool.
    pub fn new(config: ClusterConfig) -> Self {
        Self::new_with_runtime(config, RealRuntime::new())
    }

    /// Build a cluster on an explicit [`Runtime`] — pass a
    /// [`SimRuntime`](skt_sim::SimRuntime) to make every job on this
    /// cluster a deterministic function of `(config, seed)`.
    pub fn new_with_runtime(config: ClusterConfig, runtime: Arc<dyn Runtime>) -> Self {
        let total = config.total();
        let events = EventBus::new();
        if runtime.is_sim() {
            events.subscribe(Arc::new(SimPhaseTracker {
                rt: Arc::clone(&runtime),
            }));
        }
        Cluster {
            config,
            shm: (0..total).map(|_| ShmStore::new()).collect(),
            hdd: (0..total)
                .map(|_| Device::new(DeviceKind::Hdd).with_bus(events.clone()))
                .collect(),
            ssd: (0..total)
                .map(|_| Device::new(DeviceKind::Ssd).with_bus(events.clone()))
                .collect(),
            pfs: Device::new(DeviceKind::Pfs).with_bus(events.clone()),
            alive: Mutex::new(vec![true; total]),
            spare_pool: Mutex::new((config.nodes..total).collect()),
            job_abort: AtomicBool::new(false),
            injector: FailureInjector::new(),
            // Local-cluster-ish defaults; experiments override via
            // platform models where it matters.
            net: NetModel::new(2e-6, 12.5e9, 2),
            events,
            runtime,
            gray: Mutex::new(vec![None; total]),
            generation: Mutex::new(vec![0; total]),
            fenced: Mutex::new(vec![false; total]),
            monitor: SuspicionMonitor::default(),
            suspicion_on: AtomicBool::new(false),
            watched: Mutex::new(Vec::new()),
            verdict: Mutex::new(None),
        }
    }

    /// The runtime this cluster's jobs are scheduled and timed by.
    pub fn runtime(&self) -> &Arc<dyn Runtime> {
        &self.runtime
    }

    /// Current time on the cluster's clock (wall under [`RealRuntime`],
    /// virtual under simulation).
    pub fn now(&self) -> Duration {
        self.runtime.now()
    }

    /// Start a [`Stopwatch`] on the cluster's clock. Every layer that
    /// reports a duration measures with this rather than `Instant::now()`
    /// so reports are bit-identical for a fixed `(config, seed)` under
    /// simulation.
    pub fn stopwatch(&self) -> Stopwatch {
        Stopwatch::start(&self.runtime)
    }

    /// Charge the modeled network cost of moving `bytes` point-to-point
    /// to the virtual clock. Under real time this is a no-op: modeled
    /// costs there are reported, never waited out.
    pub fn charge_send(&self, bytes: usize) {
        if self.runtime.is_sim() {
            self.runtime.advance(self.net.p2p(bytes));
        }
    }

    /// Like [`Self::charge_send`], but attributed to the sending node so
    /// link degradation can inflate the cost: a gray
    /// [`GrayKind::LinkDegrade`] sender pays `factor`× the α-β time, and
    /// the *excess* over the healthy cost feeds its suspicion score.
    /// Healthy senders feed a zero sample (their score decays).
    pub fn charge_send_from(&self, node: NodeId, bytes: usize) {
        let base = self.net.p2p(bytes);
        let cost = match self.gray_kind(node) {
            Some(GrayKind::LinkDegrade { factor }) => {
                let degraded = base * factor;
                self.monitor.sample(node, degraded.saturating_sub(base));
                degraded
            }
            _ => {
                if self.suspicion_enabled() {
                    self.monitor.sample(node, Duration::ZERO);
                }
                base
            }
        };
        if self.runtime.is_sim() {
            self.runtime.advance(cost);
        }
    }

    // ---- gray faults, suspicion, fencing -------------------------------

    /// Arm the suspicion layer with explicit heartbeat parameters. Also
    /// done implicitly when a gray [`FaultPlan`] is armed (with the
    /// current — by default, default — parameters).
    pub fn set_heartbeat(&self, cfg: HeartbeatConfig) {
        self.monitor.set_config(cfg);
        self.enable_suspicion();
    }

    /// Whether the suspicion layer is armed.
    pub fn suspicion_enabled(&self) -> bool {
        self.suspicion_on.load(Ordering::SeqCst)
    }

    /// The heartbeat/suspicion monitor.
    pub fn monitor(&self) -> &SuspicionMonitor {
        &self.monitor
    }

    fn enable_suspicion(&self) {
        self.suspicion_on.store(true, Ordering::SeqCst);
        // A hung node parks every live task sooner or later; the stall
        // wake turns that from a sim deadlock into heartbeat-granular
        // passage of time, which is what lets a peer's score cross the
        // threshold.
        self.runtime
            .set_stall_wake(Some(self.monitor.config().interval));
    }

    /// Announce a job launch on `nodes`: they become the suspicion
    /// evaluation set and their slowness EWMAs restart. No-op while the
    /// suspicion layer is unarmed.
    pub fn begin_job(&self, nodes: &[NodeId]) {
        if !self.suspicion_enabled() {
            return;
        }
        let mut set: Vec<NodeId> = nodes.to_vec();
        set.sort_unstable();
        set.dedup();
        self.monitor.reset(&set);
        *self.watched.lock() = set;
    }

    /// Turn `plan.node` gray right now (normally reached via an armed
    /// [`GrayPlan`] firing at its probe).
    pub fn apply_gray(&self, plan: &GrayPlan) {
        let now = self.runtime.now();
        self.gray.lock()[plan.node] = Some(GrayState {
            kind: plan.kind,
            heal_at: plan.heal_after.map(|d| now + d),
        });
        self.enable_suspicion();
        if matches!(plan.kind, GrayKind::Hang) {
            self.monitor.hang(plan.node, now);
        }
        self.events.emit(Event::GrayInjected {
            node: plan.node,
            kind: plan.kind.label(),
        });
    }

    /// The node's current gray degradation, evaluating self-healing
    /// lazily: once the plan's `heal_after` deadline passes on the
    /// virtual clock the state clears (and the hang flag with it), so an
    /// expired gray can never be observed, declared, or probed late.
    pub fn gray_kind(&self, node: NodeId) -> Option<GrayKind> {
        let mut gray = self.gray.lock();
        let state = gray[node]?;
        if state.heal_at.is_some_and(|at| self.runtime.now() >= at) {
            gray[node] = None;
            drop(gray);
            self.monitor.clear_hang(node);
            return None;
        }
        Some(state.kind)
    }

    /// Is the node currently hard-hung? Rank code polls this to hold the
    /// node's tasks at their next yield point.
    pub fn node_hung(&self, node: NodeId) -> bool {
        matches!(self.gray_kind(node), Some(GrayKind::Hang))
    }

    /// Management-plane probe of a node (the service's observe → probe
    /// step). Dead and hung nodes don't answer; stragglers and degraded
    /// links answer but self-report.
    pub fn probe_node(&self, node: NodeId) -> ProbeVerdict {
        if !self.node_alive(node) {
            return ProbeVerdict::Unresponsive;
        }
        match self.gray_kind(node) {
            None => ProbeVerdict::Responsive,
            Some(GrayKind::Hang) => ProbeVerdict::Unresponsive,
            Some(k) => ProbeVerdict::Degraded(k.label()),
        }
    }

    /// One heartbeat step of `node` at a probe point: a straggler charges
    /// its extra virtual time and self-reports it, a healthy node beats a
    /// zero sample, and either way the node evaluates its *peers* for
    /// declaration. No-op while the suspicion layer is unarmed.
    fn heartbeat_step(&self, node: NodeId) {
        if !self.suspicion_enabled() {
            return;
        }
        match self.gray_kind(node) {
            Some(GrayKind::Slow { factor }) => {
                let extra = self.monitor.config().interval * factor;
                self.runtime.advance(extra);
                self.monitor.sample(node, extra);
            }
            // A hung node never reaches a probe (it is held at its yield
            // point); its frozen heartbeat is what peers score.
            Some(GrayKind::Hang) => {}
            _ => self.monitor.sample(node, Duration::ZERO),
        }
        self.evaluate_suspicion(node);
    }

    /// Evaluate suspicion from `observer`'s point of view: score every
    /// *other* live, unfenced watched node and declare the worst one
    /// suspect if it exceeds the threshold. The first declaration wins
    /// and aborts the job; later calls echo it. Returns the standing
    /// verdict, if any.
    pub fn evaluate_suspicion(&self, observer: NodeId) -> Option<Suspicion> {
        if !self.suspicion_enabled() {
            return None;
        }
        let peers: Vec<NodeId> = {
            let alive = self.alive.lock();
            let fenced = self.fenced.lock();
            self.watched
                .lock()
                .iter()
                .copied()
                .filter(|&n| n != observer && alive[n] && !fenced[n])
                .collect()
        };
        // lazy-heal pass first, so an expired gray is never declared late
        for &n in &peers {
            let _ = self.gray_kind(n);
        }
        let now = self.runtime.now();
        if let Some(v) = self.monitor.worst(&peers, now) {
            let mut verdict = self.verdict.lock();
            if verdict.is_none() {
                *verdict = Some(v);
                drop(verdict);
                self.events.emit(Event::SuspicionDeclared {
                    node: v.node,
                    score: v.score,
                });
                self.job_abort.store(true, Ordering::SeqCst);
                self.runtime.notify();
            }
        }
        self.suspected()
    }

    /// The standing suspicion verdict of the current launch, if one was
    /// declared. Cleared by [`Self::reset_abort`].
    pub fn suspected(&self) -> Option<Suspicion> {
        *self.verdict.lock()
    }

    /// Abort-style check for gray failure: evaluate suspicion from
    /// `observer`'s point of view and surface the standing verdict as a
    /// typed fault. Rank code calls this in blocking-receive loops so a
    /// collective returns [`Fault::Suspect`] instead of parking forever
    /// on a gray peer.
    pub fn check_gray(&self, observer: NodeId) -> Result<(), Fault> {
        match self.evaluate_suspicion(observer) {
            Some(v) => Err(Fault::Suspect {
                node: v.node,
                score: v.score,
            }),
            None => Ok(()),
        }
    }

    /// Fence a node: bump its generation, freeze its SHM (stale writes
    /// vanish into detached copies), and quarantine it from placement.
    /// The node stays "alive" — that is the point: a fenced zombie may
    /// keep running, but nothing it does is visible. Returns the new
    /// generation.
    pub fn fence_node(&self, node: NodeId) -> u64 {
        let generation = {
            let mut g = self.generation.lock();
            g[node] += 1;
            g[node]
        };
        self.fenced.lock()[node] = true;
        self.shm[node].freeze();
        self.events.emit(Event::NodeFenced { node, generation });
        self.runtime.notify();
        generation
    }

    /// Is the node fenced?
    pub fn node_fenced(&self, node: NodeId) -> bool {
        self.fenced.lock()[node]
    }

    /// The node's current fencing generation.
    pub fn node_generation(&self, node: NodeId) -> u64 {
        self.generation.lock()[node]
    }

    /// Alive *and* not fenced — the placement predicate. Repair, spare
    /// draws and shard healing treat a fenced node exactly like a dead
    /// one; only its quarantined memory distinguishes them.
    pub fn node_usable(&self, node: NodeId) -> bool {
        self.node_alive(node) && !self.node_fenced(node)
    }

    /// Return a fenced node to service as a spare: its quarantined SHM is
    /// wiped (stale generations must never be read), its gray state and
    /// suspicion history are dropped, and it re-enters the spare pool.
    /// Its generation stays bumped, so anything still holding the old
    /// generation remains rejected.
    pub fn recommission_node(&self, node: NodeId) {
        assert!(
            self.node_fenced(node),
            "recommission_node({node}): node is not fenced"
        );
        self.gray.lock()[node] = None;
        self.monitor.forget(node);
        self.shm[node].thaw();
        self.shm[node].wipe();
        self.fenced.lock()[node] = false;
        self.spare_pool.lock().push(node);
    }

    /// Cluster shape.
    pub fn config(&self) -> ClusterConfig {
        self.config
    }

    /// Total node count including spares.
    pub fn total_nodes(&self) -> usize {
        self.config.total()
    }

    /// Shared-memory store of a node.
    pub fn shm(&self, node: NodeId) -> &ShmStore {
        &self.shm[node]
    }

    /// Local spinning disk of a node. Contents survive node power-off
    /// (platters keep their data; the paper's BLCR runs recover from them
    /// after the node is replaced — see DESIGN.md substitutions).
    pub fn hdd(&self, node: NodeId) -> &Device {
        &self.hdd[node]
    }

    /// Local SSD of a node (same persistence semantics as [`Self::hdd`]).
    pub fn ssd(&self, node: NodeId) -> &Device {
        &self.ssd[node]
    }

    /// The shared parallel file system.
    pub fn pfs(&self) -> &Device {
        &self.pfs
    }

    /// Network model used for modeled-time estimates.
    pub fn net(&self) -> NetModel {
        self.net
    }

    /// The cluster-wide observation bus. Protocol layers emit into it;
    /// harnesses subscribe [`Observer`]s.
    pub fn events(&self) -> &EventBus {
        &self.events
    }

    /// Override the network model (e.g. Tianhe constants).
    pub fn set_net(&mut self, net: NetModel) {
        self.net = net;
    }

    /// Is the node alive?
    pub fn node_alive(&self, node: NodeId) -> bool {
        self.alive.lock()[node]
    }

    /// Nodes currently dead.
    pub fn dead_nodes(&self) -> Vec<NodeId> {
        self.alive
            .lock()
            .iter()
            .enumerate()
            .filter(|(_, a)| !**a)
            .map(|(i, _)| i)
            .collect()
    }

    /// Power off a node: its memory (SHM included) is destroyed and the
    /// whole running job aborts, which is what every mainstream MPI
    /// runtime does on a node loss (§1 of the paper).
    pub fn kill_node(&self, node: NodeId) {
        {
            let mut alive = self.alive.lock();
            if !alive[node] {
                return;
            }
            alive[node] = false;
        }
        self.shm[node].wipe();
        self.job_abort.store(true, Ordering::SeqCst);
        // parked peers must wake to observe the abort
        self.runtime.notify();
    }

    /// Take a spare node from the pool (daemon replacing a lost node).
    /// Dead and fenced spares are skipped.
    pub fn take_spare(&self) -> Option<NodeId> {
        let mut pool = self.spare_pool.lock();
        while let Some(n) = pool.pop() {
            if self.node_usable(n) {
                return Some(n);
            }
        }
        None
    }

    /// Spares remaining.
    pub fn spares_left(&self) -> usize {
        self.spare_pool.lock().len()
    }

    /// Has the current job been aborted?
    pub fn aborted(&self) -> bool {
        self.job_abort.load(Ordering::SeqCst)
    }

    /// Clear the abort flag (and any standing suspicion verdict) before
    /// relaunching a job. Dead nodes stay dead, their SHM stays wiped;
    /// gray nodes stay gray and fenced nodes stay fenced.
    pub fn reset_abort(&self) {
        self.job_abort.store(false, Ordering::SeqCst);
        *self.verdict.lock() = None;
    }

    /// Arm a failure plan (see [`FailurePlan`]).
    pub fn arm_failure(&self, plan: FailurePlan) {
        self.injector.arm(plan);
    }

    /// Arm any fault plan — a kill, a silent bit flip, or a gray
    /// degradation (see [`FaultPlan`]). Arming a gray plan arms the
    /// suspicion layer as a side effect.
    pub fn arm_fault(&self, plan: impl Into<FaultPlan>) {
        let plan = plan.into();
        if plan.is_gray() {
            self.enable_suspicion();
        }
        self.injector.arm_fault(plan);
    }

    /// Disarm all fault plans.
    pub fn clear_failures(&self) {
        self.injector.clear();
    }

    /// Apply a corruption immediately: flip the planned bit in the first
    /// (name-sorted) segment on `plan.node` whose name ends with the
    /// region's suffix. Offsets wrap modulo the region size so every
    /// `(offset, bit)` pair is a valid flip somewhere in the region.
    /// Returns `false` when the node has no such segment or it is empty
    /// (e.g. a wiped node) — a corruption of nothing is a no-op.
    pub fn corrupt_now(&self, plan: &CorruptPlan) -> bool {
        let suffix = format!("/{}", plan.region.suffix());
        let store = &self.shm[plan.node];
        let Some(name) = store.names().into_iter().find(|n| n.ends_with(&suffix)) else {
            return false;
        };
        let Some(seg) = store.attach(&name) else {
            return false;
        };
        let mut g = seg.write();
        let flipped = match &mut *g {
            SegmentData::F64(v) if !v.is_empty() => {
                let byte = plan.offset % (v.len() * 8);
                let bit_pos = (byte % 8) * 8 + usize::from(plan.bit % 8);
                v[byte / 8] = f64::from_bits(v[byte / 8].to_bits() ^ (1u64 << bit_pos));
                true
            }
            SegmentData::Bytes(v) if !v.is_empty() => {
                let byte = plan.offset % v.len();
                v[byte] ^= 1u8 << (plan.bit % 8);
                true
            }
            _ => false,
        };
        drop(g);
        if flipped {
            self.events.emit(Event::CorruptionInjected {
                node: plan.node,
                region: plan.region.suffix(),
            });
        }
        flipped
    }

    /// Named probe point, called from rank code with the rank's own
    /// 1-based occurrence count for `label`. If an armed kill plan
    /// matches, the node is killed and `Err(Fault::NodeDead)` is returned
    /// to the dying rank; a matching corrupt plan flips its bit silently
    /// and the rank continues. Otherwise this doubles as an abort check
    /// so every rank notices a failure promptly.
    pub fn failpoint(&self, node: NodeId, label: &str, count: u64) -> Result<(), Fault> {
        match self.injector.fires(node, label, count) {
            Some(FaultAction::Kill) => {
                self.kill_node(node);
                return Err(Fault::NodeDead(node));
            }
            Some(FaultAction::Corrupt(plan)) => {
                self.corrupt_now(&plan);
            }
            Some(FaultAction::Gray(plan)) => {
                self.apply_gray(&plan);
            }
            None => {}
        }
        // heartbeat + peer evaluation ride on every probe pass
        self.heartbeat_step(node);
        if let Some(v) = self.suspected() {
            return Err(Fault::Suspect {
                node: v.node,
                score: v.score,
            });
        }
        self.check_abort()?;
        if !self.node_alive(node) {
            return Err(Fault::NodeDead(node));
        }
        Ok(())
    }

    /// Abort the running job without killing a node (used by the runtime
    /// when a rank thread panics, so its peers unblock promptly).
    pub fn job_abort_for_panic(&self) {
        self.job_abort.store(true, Ordering::SeqCst);
        self.runtime.notify();
    }

    /// Return `Err(Fault::JobAborted)` if the job has been aborted.
    pub fn check_abort(&self) -> Result<(), Fault> {
        if self.aborted() {
            Err(Fault::JobAborted)
        } else {
            Ok(())
        }
    }
}

/// Rank-to-node placement, the paper's `ranklist` file (§5.2).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Ranklist {
    node_of_rank: Vec<NodeId>,
}

impl Ranklist {
    /// Explicit placement.
    pub fn explicit(node_of_rank: Vec<NodeId>) -> Self {
        assert!(!node_of_rank.is_empty());
        Ranklist { node_of_rank }
    }

    /// Block placement: ranks `0..k` on node 0, next `k` on node 1, …
    /// (`k = ceil(nranks / nodes)`).
    pub fn block(nranks: usize, nodes: usize) -> Self {
        assert!(nranks >= 1 && nodes >= 1);
        let per = nranks.div_ceil(nodes);
        Ranklist {
            node_of_rank: (0..nranks).map(|r| r / per).collect(),
        }
    }

    /// Round-robin placement: rank `r` on node `r % nodes`. With group
    /// size dividing the node count this puts every member of a
    /// checkpoint group on a distinct node — the property §3.3 requires
    /// to survive a node loss.
    pub fn round_robin(nranks: usize, nodes: usize) -> Self {
        assert!(nranks >= 1 && nodes >= 1);
        Ranklist {
            node_of_rank: (0..nranks).map(|r| r % nodes).collect(),
        }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.node_of_rank.len()
    }

    /// True if empty (never constructed so; kept for API completeness).
    pub fn is_empty(&self) -> bool {
        self.node_of_rank.is_empty()
    }

    /// Node hosting `rank`.
    pub fn node_of(&self, rank: usize) -> NodeId {
        self.node_of_rank[rank]
    }

    /// Ranks hosted on `node`.
    pub fn ranks_on(&self, node: NodeId) -> Vec<usize> {
        self.node_of_rank
            .iter()
            .enumerate()
            .filter(|(_, n)| **n == node)
            .map(|(r, _)| r)
            .collect()
    }

    /// Number of ranks sharing the node of `rank` (device/port sharers).
    pub fn sharers_of(&self, rank: usize) -> usize {
        let node = self.node_of(rank);
        self.node_of_rank.iter().filter(|n| **n == node).count()
    }

    /// Replace every unusable (dead *or* fenced) node with a spare, in
    /// place. Returns `(rank, old_node, new_node)` for each migrated
    /// rank. Errors with the unreplaceable node if the spare pool runs
    /// dry.
    pub fn repair(&mut self, cluster: &Cluster) -> Result<Vec<(usize, NodeId, NodeId)>, NodeId> {
        let mut moved = Vec::new();
        let dead: Vec<NodeId> = self
            .node_of_rank
            .iter()
            .copied()
            .filter(|n| !cluster.node_usable(*n))
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        for old in dead {
            let new = cluster.take_spare().ok_or(old)?;
            for (r, n) in self.node_of_rank.iter_mut().enumerate() {
                if *n == old {
                    *n = new;
                    moved.push((r, old, new));
                }
            }
        }
        Ok(moved)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kill_node_wipes_shm_and_aborts_job() {
        let c = Cluster::new(ClusterConfig::new(2, 1));
        c.shm(0)
            .get_or_create("seg", || crate::shm::SegmentData::F64(vec![1.0; 4]));
        c.shm(1)
            .get_or_create("seg", || crate::shm::SegmentData::F64(vec![2.0; 4]));
        c.kill_node(1);
        assert!(c.aborted());
        assert!(!c.node_alive(1));
        assert_eq!(c.dead_nodes(), vec![1]);
        assert!(c.shm(1).is_empty(), "dead node memory wiped");
        assert_eq!(c.shm(0).total_bytes(), 32, "healthy node memory intact");
    }

    #[test]
    fn reset_abort_keeps_node_dead() {
        let c = Cluster::new(ClusterConfig::new(2, 0));
        c.kill_node(0);
        c.reset_abort();
        assert!(!c.aborted());
        assert!(!c.node_alive(0));
    }

    #[test]
    fn spares_come_from_the_tail() {
        let c = Cluster::new(ClusterConfig::new(3, 2));
        let s1 = c.take_spare().unwrap();
        let s2 = c.take_spare().unwrap();
        assert!(s1 >= 3 && s2 >= 3 && s1 != s2);
        assert!(c.take_spare().is_none());
    }

    #[test]
    fn dead_spare_is_skipped() {
        let c = Cluster::new(ClusterConfig::new(1, 2));
        c.kill_node(2);
        c.reset_abort();
        assert_eq!(c.take_spare(), Some(1));
        assert!(c.take_spare().is_none());
    }

    #[test]
    fn failpoint_kills_at_armed_plan() {
        let c = Cluster::new(ClusterConfig::new(2, 0));
        c.arm_failure(FailurePlan::new("encode", 2, 1));
        assert!(c.failpoint(1, "encode", 1).is_ok());
        assert_eq!(c.failpoint(1, "encode", 2), Err(Fault::NodeDead(1)));
        // other ranks now see the abort
        assert_eq!(c.failpoint(0, "anything", 1), Err(Fault::JobAborted));
    }

    #[test]
    fn failpoint_on_dead_node_reports_dead() {
        let c = Cluster::new(ClusterConfig::new(2, 0));
        c.kill_node(1);
        c.reset_abort();
        assert_eq!(c.failpoint(1, "x", 1), Err(Fault::NodeDead(1)));
    }

    #[test]
    fn ranklist_block_and_round_robin() {
        let b = Ranklist::block(8, 4);
        assert_eq!(b.node_of(0), 0);
        assert_eq!(b.node_of(1), 0);
        assert_eq!(b.node_of(7), 3);
        let rr = Ranklist::round_robin(8, 4);
        assert_eq!(rr.node_of(0), 0);
        assert_eq!(rr.node_of(4), 0);
        assert_eq!(rr.node_of(5), 1);
        assert_eq!(rr.ranks_on(1), vec![1, 5]);
        assert_eq!(rr.sharers_of(1), 2);
    }

    #[test]
    fn repair_moves_ranks_to_spares() {
        let c = Cluster::new(ClusterConfig::new(2, 1));
        let mut rl = Ranklist::round_robin(4, 2);
        c.kill_node(1);
        c.reset_abort();
        let moved = rl.repair(&c).unwrap();
        assert_eq!(moved.len(), 2, "two ranks lived on node 1");
        for (_, old, new) in &moved {
            assert_eq!(*old, 1);
            assert_eq!(*new, 2);
        }
        assert_eq!(rl.node_of(1), 2);
        assert_eq!(rl.node_of(3), 2);
        // nothing dead now, repair is a no-op
        assert!(rl.repair(&c).unwrap().is_empty());
    }

    #[test]
    fn repair_fails_without_spares() {
        let c = Cluster::new(ClusterConfig::new(2, 0));
        let mut rl = Ranklist::round_robin(2, 2);
        c.kill_node(0);
        c.reset_abort();
        assert_eq!(rl.repair(&c), Err(0));
    }

    #[test]
    fn corrupt_now_flips_one_bit_and_emits() {
        use crate::failure::Region;
        let c = Cluster::new(ClusterConfig::new(1, 0));
        let rec = Arc::new(crate::events::Recorder::new());
        c.events()
            .subscribe(Arc::clone(&rec) as Arc<dyn crate::events::Observer>);
        c.shm(0)
            .get_or_create("job/r0/b", || crate::shm::SegmentData::F64(vec![0.0; 4]));
        let plan = crate::failure::CorruptPlan::new("p", 1, 0, Region::CopyB, 9, 2);
        assert!(c.corrupt_now(&plan));
        let seg = c.shm(0).attach("job/r0/b").unwrap();
        // byte 9 lives in element 1; bit 2 of that byte is bit 10 of the word
        assert_eq!(seg.read().as_f64()[1].to_bits(), 1u64 << 10);
        assert_eq!(
            rec.count(|e| matches!(
                e,
                Event::CorruptionInjected {
                    node: 0,
                    region: "b"
                }
            )),
            1
        );
        // flipping again restores the original bits (xor involution)
        assert!(c.corrupt_now(&plan));
        assert_eq!(seg.read().as_f64()[1].to_bits(), 0);
    }

    #[test]
    fn corrupt_now_on_missing_region_is_a_noop() {
        use crate::failure::Region;
        let c = Cluster::new(ClusterConfig::new(1, 0));
        let plan = crate::failure::CorruptPlan::new("p", 1, 0, Region::Header, 0, 0);
        assert!(!c.corrupt_now(&plan), "no segment to damage");
    }

    #[test]
    fn armed_corrupt_plan_fires_at_failpoint_without_killing() {
        use crate::failure::{CorruptPlan, Region};
        let c = Cluster::new(ClusterConfig::new(1, 0));
        c.shm(0).get_or_create("job/r0/header", || {
            crate::shm::SegmentData::Bytes(vec![0; 8])
        });
        c.arm_fault(CorruptPlan::new("computing", 2, 0, Region::Header, 3, 5));
        assert!(c.failpoint(0, "computing", 1).is_ok());
        assert!(
            c.failpoint(0, "computing", 2).is_ok(),
            "corruption is silent"
        );
        assert!(c.node_alive(0));
        assert!(!c.aborted());
        let seg = c.shm(0).attach("job/r0/header").unwrap();
        assert_eq!(seg.read().as_bytes()[3], 1 << 5);
    }

    #[test]
    fn mild_straggler_is_tolerated() {
        let c = Cluster::new(ClusterConfig::new(2, 0));
        c.arm_fault(GrayPlan::slow("p", 1, 0, 4));
        assert!(c.suspicion_enabled(), "gray plan arms the suspicion layer");
        c.begin_job(&[0, 1]);
        for i in 1..=20 {
            assert!(c.failpoint(0, "p", i).is_ok());
            assert!(c.failpoint(1, "p", i).is_ok());
        }
        assert_eq!(c.gray_kind(0), Some(GrayKind::Slow { factor: 4 }));
        assert!(
            c.node_alive(0) && !c.aborted(),
            "factor ≤ threshold: job continues"
        );
    }

    #[test]
    fn heavy_straggler_is_declared_by_a_peer() {
        let c = Cluster::new(ClusterConfig::new(2, 0));
        c.arm_fault(GrayPlan::slow("p", 1, 0, 64));
        c.begin_job(&[0, 1]);
        // the straggler cannot declare itself…
        assert!(c.failpoint(0, "p", 1).is_ok());
        assert!(c.failpoint(0, "p", 2).is_ok());
        // …but its peer's next probe sees the self-reported slowness
        let err = c.failpoint(1, "p", 1).unwrap_err();
        assert!(matches!(err, Fault::Suspect { node: 0, .. }), "{err:?}");
        assert!(c.aborted());
        // and the verdict is sticky — the straggler echoes it
        assert!(matches!(
            c.failpoint(0, "p", 3),
            Err(Fault::Suspect { node: 0, .. })
        ));
        assert!(c.node_alive(0), "suspect, not dead: memory intact");
        c.reset_abort();
        assert_eq!(c.suspected(), None);
    }

    #[test]
    fn hang_heals_lazily_on_the_virtual_clock() {
        let rt = skt_sim::SimRuntime::new(7);
        let c = Cluster::new_with_runtime(ClusterConfig::new(2, 0), rt.clone());
        c.begin_job(&[0, 1]);
        c.apply_gray(&GrayPlan::hang("p", 1, 1).heal_after(Duration::from_millis(1)));
        assert!(c.node_hung(1));
        assert_eq!(
            c.probe_node(1),
            crate::suspicion::ProbeVerdict::Unresponsive
        );
        rt.advance(Duration::from_millis(2));
        assert!(!c.node_hung(1), "heal deadline passed");
        assert_eq!(c.probe_node(1), crate::suspicion::ProbeVerdict::Responsive);
        assert_eq!(c.evaluate_suspicion(0), None, "healed before declaration");
    }

    #[test]
    fn degraded_link_inflates_cost_and_is_declared() {
        let rt = skt_sim::SimRuntime::new(3);
        let c = Cluster::new_with_runtime(ClusterConfig::new(2, 0), rt.clone());
        c.arm_fault(GrayPlan::link_degrade("p", 1, 0, 1000));
        c.begin_job(&[0, 1]);
        assert!(c.failpoint(0, "p", 1).is_ok());
        let healthy = c.net().p2p(1 << 20);
        let t0 = rt.now();
        c.charge_send_from(0, 1 << 20);
        let cost = rt.now() - t0;
        assert!(cost >= healthy * 900, "cost inflated ~1000×: {cost:?}");
        // a couple of bulk sends push the excess EWMA over the threshold
        c.charge_send_from(0, 1 << 20);
        assert!(matches!(
            c.check_gray(1),
            Err(Fault::Suspect { node: 0, .. })
        ));
    }

    #[test]
    fn fencing_quarantines_and_recommission_returns_a_clean_spare() {
        let c = Cluster::new(ClusterConfig::new(2, 0));
        c.shm(1)
            .get_or_create("seg", || crate::shm::SegmentData::Bytes(vec![9; 8]));
        let generation = c.fence_node(1);
        assert_eq!(generation, 1);
        assert_eq!(c.node_generation(1), 1);
        assert!(c.node_alive(1), "fenced, not dead");
        assert!(!c.node_usable(1));
        // a zombie write after the fence vanishes
        if let Some(seg) = c.shm(1).attach("seg") {
            seg.write().as_bytes_mut()[0] = 42;
        }
        // repair treats the fenced node exactly like a dead one
        let mut rl = Ranklist::round_robin(2, 2);
        assert_eq!(rl.repair(&c), Err(1), "no spares to migrate onto");
        c.recommission_node(1);
        assert!(c.node_usable(1));
        assert!(c.shm(1).is_empty(), "stale quarantined memory wiped");
        assert_eq!(c.node_generation(1), 1, "generation stays bumped");
        assert_eq!(c.take_spare(), Some(1), "recommissioned into the pool");
    }

    #[test]
    fn take_spare_skips_fenced_nodes() {
        let c = Cluster::new(ClusterConfig::new(1, 2));
        c.fence_node(2);
        assert_eq!(c.take_spare(), Some(1));
        assert_eq!(c.take_spare(), None);
    }

    #[test]
    fn local_disk_survives_node_loss() {
        let c = Cluster::new(ClusterConfig::new(1, 0));
        c.hdd(0).write("ckpt", vec![1, 2, 3], 1);
        c.kill_node(0);
        assert!(c.hdd(0).read("ckpt", 1).is_some(), "platters keep data");
    }
}
