//! The virtual cluster: node inventory, spare pool, rank placement, and
//! MPI-style whole-job abort on node failure.

use crate::events::{Event, EventBus, Observer};
use crate::failure::{CorruptPlan, FailureInjector, FailurePlan, Fault, FaultAction, FaultPlan};
use crate::net::NetModel;
use crate::shm::{SegmentData, ShmStore};
use crate::storage::{Device, DeviceKind};
use parking_lot::Mutex;
use skt_sim::{RealRuntime, Runtime, Stopwatch};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Node identifier (index into the cluster's node tables).
pub type NodeId = usize;

/// Cluster shape.
#[derive(Clone, Copy, Debug)]
pub struct ClusterConfig {
    /// Compute nodes initially in the job's resource pool.
    pub nodes: usize,
    /// Additional spare nodes available to replace failures.
    pub spares: usize,
}

impl ClusterConfig {
    /// `nodes` compute nodes plus `spares` spares.
    pub fn new(nodes: usize, spares: usize) -> Self {
        assert!(nodes >= 1, "need at least one node");
        ClusterConfig { nodes, spares }
    }

    fn total(&self) -> usize {
        self.nodes + self.spares
    }
}

/// The virtual cluster. One instance outlives many job launches — that is
/// the point: node SHM persists across job aborts.
pub struct Cluster {
    config: ClusterConfig,
    shm: Vec<ShmStore>,
    hdd: Vec<Device>,
    ssd: Vec<Device>,
    pfs: Device,
    alive: Mutex<Vec<bool>>,
    spare_pool: Mutex<Vec<NodeId>>,
    job_abort: AtomicBool,
    injector: FailureInjector,
    net: NetModel,
    events: EventBus,
    runtime: Arc<dyn Runtime>,
}

/// Bus observer that forwards protocol phase boundaries to the runtime,
/// giving the simulation scheduler its per-task phase windows (what
/// "kill the victim inside `FlushB`" targets).
struct SimPhaseTracker {
    rt: Arc<dyn Runtime>,
}

impl Observer for SimPhaseTracker {
    fn on_event(&self, event: &Event) {
        match *event {
            Event::PhaseEnter { label, .. } => self.rt.phase_mark(label, true),
            Event::PhaseExit { label, .. } => self.rt.phase_mark(label, false),
            _ => {}
        }
    }
}

impl Cluster {
    /// Build a cluster on real threads and the wall clock. Node ids
    /// `0..nodes` start in the job pool; ids `nodes..nodes+spares` start
    /// in the spare pool.
    pub fn new(config: ClusterConfig) -> Self {
        Self::new_with_runtime(config, RealRuntime::new())
    }

    /// Build a cluster on an explicit [`Runtime`] — pass a
    /// [`SimRuntime`](skt_sim::SimRuntime) to make every job on this
    /// cluster a deterministic function of `(config, seed)`.
    pub fn new_with_runtime(config: ClusterConfig, runtime: Arc<dyn Runtime>) -> Self {
        let total = config.total();
        let events = EventBus::new();
        if runtime.is_sim() {
            events.subscribe(Arc::new(SimPhaseTracker {
                rt: Arc::clone(&runtime),
            }));
        }
        Cluster {
            config,
            shm: (0..total).map(|_| ShmStore::new()).collect(),
            hdd: (0..total)
                .map(|_| Device::new(DeviceKind::Hdd).with_bus(events.clone()))
                .collect(),
            ssd: (0..total)
                .map(|_| Device::new(DeviceKind::Ssd).with_bus(events.clone()))
                .collect(),
            pfs: Device::new(DeviceKind::Pfs).with_bus(events.clone()),
            alive: Mutex::new(vec![true; total]),
            spare_pool: Mutex::new((config.nodes..total).collect()),
            job_abort: AtomicBool::new(false),
            injector: FailureInjector::new(),
            // Local-cluster-ish defaults; experiments override via
            // platform models where it matters.
            net: NetModel::new(2e-6, 12.5e9, 2),
            events,
            runtime,
        }
    }

    /// The runtime this cluster's jobs are scheduled and timed by.
    pub fn runtime(&self) -> &Arc<dyn Runtime> {
        &self.runtime
    }

    /// Current time on the cluster's clock (wall under [`RealRuntime`],
    /// virtual under simulation).
    pub fn now(&self) -> Duration {
        self.runtime.now()
    }

    /// Start a [`Stopwatch`] on the cluster's clock. Every layer that
    /// reports a duration measures with this rather than `Instant::now()`
    /// so reports are bit-identical for a fixed `(config, seed)` under
    /// simulation.
    pub fn stopwatch(&self) -> Stopwatch {
        Stopwatch::start(&self.runtime)
    }

    /// Charge the modeled network cost of moving `bytes` point-to-point
    /// to the virtual clock. Under real time this is a no-op: modeled
    /// costs there are reported, never waited out.
    pub fn charge_send(&self, bytes: usize) {
        if self.runtime.is_sim() {
            self.runtime.advance(self.net.p2p(bytes));
        }
    }

    /// Cluster shape.
    pub fn config(&self) -> ClusterConfig {
        self.config
    }

    /// Total node count including spares.
    pub fn total_nodes(&self) -> usize {
        self.config.total()
    }

    /// Shared-memory store of a node.
    pub fn shm(&self, node: NodeId) -> &ShmStore {
        &self.shm[node]
    }

    /// Local spinning disk of a node. Contents survive node power-off
    /// (platters keep their data; the paper's BLCR runs recover from them
    /// after the node is replaced — see DESIGN.md substitutions).
    pub fn hdd(&self, node: NodeId) -> &Device {
        &self.hdd[node]
    }

    /// Local SSD of a node (same persistence semantics as [`Self::hdd`]).
    pub fn ssd(&self, node: NodeId) -> &Device {
        &self.ssd[node]
    }

    /// The shared parallel file system.
    pub fn pfs(&self) -> &Device {
        &self.pfs
    }

    /// Network model used for modeled-time estimates.
    pub fn net(&self) -> NetModel {
        self.net
    }

    /// The cluster-wide observation bus. Protocol layers emit into it;
    /// harnesses subscribe [`Observer`]s.
    pub fn events(&self) -> &EventBus {
        &self.events
    }

    /// Override the network model (e.g. Tianhe constants).
    pub fn set_net(&mut self, net: NetModel) {
        self.net = net;
    }

    /// Is the node alive?
    pub fn node_alive(&self, node: NodeId) -> bool {
        self.alive.lock()[node]
    }

    /// Nodes currently dead.
    pub fn dead_nodes(&self) -> Vec<NodeId> {
        self.alive
            .lock()
            .iter()
            .enumerate()
            .filter(|(_, a)| !**a)
            .map(|(i, _)| i)
            .collect()
    }

    /// Power off a node: its memory (SHM included) is destroyed and the
    /// whole running job aborts, which is what every mainstream MPI
    /// runtime does on a node loss (§1 of the paper).
    pub fn kill_node(&self, node: NodeId) {
        {
            let mut alive = self.alive.lock();
            if !alive[node] {
                return;
            }
            alive[node] = false;
        }
        self.shm[node].wipe();
        self.job_abort.store(true, Ordering::SeqCst);
        // parked peers must wake to observe the abort
        self.runtime.notify();
    }

    /// Take a spare node from the pool (daemon replacing a lost node).
    pub fn take_spare(&self) -> Option<NodeId> {
        let mut pool = self.spare_pool.lock();
        while let Some(n) = pool.pop() {
            if self.alive.lock()[n] {
                return Some(n);
            }
        }
        None
    }

    /// Spares remaining.
    pub fn spares_left(&self) -> usize {
        self.spare_pool.lock().len()
    }

    /// Has the current job been aborted?
    pub fn aborted(&self) -> bool {
        self.job_abort.load(Ordering::SeqCst)
    }

    /// Clear the abort flag before relaunching a job. Dead nodes stay
    /// dead; their SHM stays wiped.
    pub fn reset_abort(&self) {
        self.job_abort.store(false, Ordering::SeqCst);
    }

    /// Arm a failure plan (see [`FailurePlan`]).
    pub fn arm_failure(&self, plan: FailurePlan) {
        self.injector.arm(plan);
    }

    /// Arm any fault plan — a kill or a silent bit flip (see
    /// [`FaultPlan`]).
    pub fn arm_fault(&self, plan: impl Into<FaultPlan>) {
        self.injector.arm_fault(plan.into());
    }

    /// Disarm all fault plans.
    pub fn clear_failures(&self) {
        self.injector.clear();
    }

    /// Apply a corruption immediately: flip the planned bit in the first
    /// (name-sorted) segment on `plan.node` whose name ends with the
    /// region's suffix. Offsets wrap modulo the region size so every
    /// `(offset, bit)` pair is a valid flip somewhere in the region.
    /// Returns `false` when the node has no such segment or it is empty
    /// (e.g. a wiped node) — a corruption of nothing is a no-op.
    pub fn corrupt_now(&self, plan: &CorruptPlan) -> bool {
        let suffix = format!("/{}", plan.region.suffix());
        let store = &self.shm[plan.node];
        let Some(name) = store.names().into_iter().find(|n| n.ends_with(&suffix)) else {
            return false;
        };
        let Some(seg) = store.attach(&name) else {
            return false;
        };
        let mut g = seg.write();
        let flipped = match &mut *g {
            SegmentData::F64(v) if !v.is_empty() => {
                let byte = plan.offset % (v.len() * 8);
                let bit_pos = (byte % 8) * 8 + usize::from(plan.bit % 8);
                v[byte / 8] = f64::from_bits(v[byte / 8].to_bits() ^ (1u64 << bit_pos));
                true
            }
            SegmentData::Bytes(v) if !v.is_empty() => {
                let byte = plan.offset % v.len();
                v[byte] ^= 1u8 << (plan.bit % 8);
                true
            }
            _ => false,
        };
        drop(g);
        if flipped {
            self.events.emit(Event::CorruptionInjected {
                node: plan.node,
                region: plan.region.suffix(),
            });
        }
        flipped
    }

    /// Named probe point, called from rank code with the rank's own
    /// 1-based occurrence count for `label`. If an armed kill plan
    /// matches, the node is killed and `Err(Fault::NodeDead)` is returned
    /// to the dying rank; a matching corrupt plan flips its bit silently
    /// and the rank continues. Otherwise this doubles as an abort check
    /// so every rank notices a failure promptly.
    pub fn failpoint(&self, node: NodeId, label: &str, count: u64) -> Result<(), Fault> {
        match self.injector.fires(node, label, count) {
            Some(FaultAction::Kill) => {
                self.kill_node(node);
                return Err(Fault::NodeDead(node));
            }
            Some(FaultAction::Corrupt(plan)) => {
                self.corrupt_now(&plan);
            }
            None => {}
        }
        self.check_abort()?;
        if !self.node_alive(node) {
            return Err(Fault::NodeDead(node));
        }
        Ok(())
    }

    /// Abort the running job without killing a node (used by the runtime
    /// when a rank thread panics, so its peers unblock promptly).
    pub fn job_abort_for_panic(&self) {
        self.job_abort.store(true, Ordering::SeqCst);
        self.runtime.notify();
    }

    /// Return `Err(Fault::JobAborted)` if the job has been aborted.
    pub fn check_abort(&self) -> Result<(), Fault> {
        if self.aborted() {
            Err(Fault::JobAborted)
        } else {
            Ok(())
        }
    }
}

/// Rank-to-node placement, the paper's `ranklist` file (§5.2).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Ranklist {
    node_of_rank: Vec<NodeId>,
}

impl Ranklist {
    /// Explicit placement.
    pub fn explicit(node_of_rank: Vec<NodeId>) -> Self {
        assert!(!node_of_rank.is_empty());
        Ranklist { node_of_rank }
    }

    /// Block placement: ranks `0..k` on node 0, next `k` on node 1, …
    /// (`k = ceil(nranks / nodes)`).
    pub fn block(nranks: usize, nodes: usize) -> Self {
        assert!(nranks >= 1 && nodes >= 1);
        let per = nranks.div_ceil(nodes);
        Ranklist {
            node_of_rank: (0..nranks).map(|r| r / per).collect(),
        }
    }

    /// Round-robin placement: rank `r` on node `r % nodes`. With group
    /// size dividing the node count this puts every member of a
    /// checkpoint group on a distinct node — the property §3.3 requires
    /// to survive a node loss.
    pub fn round_robin(nranks: usize, nodes: usize) -> Self {
        assert!(nranks >= 1 && nodes >= 1);
        Ranklist {
            node_of_rank: (0..nranks).map(|r| r % nodes).collect(),
        }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.node_of_rank.len()
    }

    /// True if empty (never constructed so; kept for API completeness).
    pub fn is_empty(&self) -> bool {
        self.node_of_rank.is_empty()
    }

    /// Node hosting `rank`.
    pub fn node_of(&self, rank: usize) -> NodeId {
        self.node_of_rank[rank]
    }

    /// Ranks hosted on `node`.
    pub fn ranks_on(&self, node: NodeId) -> Vec<usize> {
        self.node_of_rank
            .iter()
            .enumerate()
            .filter(|(_, n)| **n == node)
            .map(|(r, _)| r)
            .collect()
    }

    /// Number of ranks sharing the node of `rank` (device/port sharers).
    pub fn sharers_of(&self, rank: usize) -> usize {
        let node = self.node_of(rank);
        self.node_of_rank.iter().filter(|n| **n == node).count()
    }

    /// Replace every dead node with a spare, in place. Returns
    /// `(rank, old_node, new_node)` for each migrated rank. Errors with
    /// the unreplaceable node if the spare pool runs dry.
    pub fn repair(&mut self, cluster: &Cluster) -> Result<Vec<(usize, NodeId, NodeId)>, NodeId> {
        let mut moved = Vec::new();
        let dead: Vec<NodeId> = self
            .node_of_rank
            .iter()
            .copied()
            .filter(|n| !cluster.node_alive(*n))
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        for old in dead {
            let new = cluster.take_spare().ok_or(old)?;
            for (r, n) in self.node_of_rank.iter_mut().enumerate() {
                if *n == old {
                    *n = new;
                    moved.push((r, old, new));
                }
            }
        }
        Ok(moved)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kill_node_wipes_shm_and_aborts_job() {
        let c = Cluster::new(ClusterConfig::new(2, 1));
        c.shm(0)
            .get_or_create("seg", || crate::shm::SegmentData::F64(vec![1.0; 4]));
        c.shm(1)
            .get_or_create("seg", || crate::shm::SegmentData::F64(vec![2.0; 4]));
        c.kill_node(1);
        assert!(c.aborted());
        assert!(!c.node_alive(1));
        assert_eq!(c.dead_nodes(), vec![1]);
        assert!(c.shm(1).is_empty(), "dead node memory wiped");
        assert_eq!(c.shm(0).total_bytes(), 32, "healthy node memory intact");
    }

    #[test]
    fn reset_abort_keeps_node_dead() {
        let c = Cluster::new(ClusterConfig::new(2, 0));
        c.kill_node(0);
        c.reset_abort();
        assert!(!c.aborted());
        assert!(!c.node_alive(0));
    }

    #[test]
    fn spares_come_from_the_tail() {
        let c = Cluster::new(ClusterConfig::new(3, 2));
        let s1 = c.take_spare().unwrap();
        let s2 = c.take_spare().unwrap();
        assert!(s1 >= 3 && s2 >= 3 && s1 != s2);
        assert!(c.take_spare().is_none());
    }

    #[test]
    fn dead_spare_is_skipped() {
        let c = Cluster::new(ClusterConfig::new(1, 2));
        c.kill_node(2);
        c.reset_abort();
        assert_eq!(c.take_spare(), Some(1));
        assert!(c.take_spare().is_none());
    }

    #[test]
    fn failpoint_kills_at_armed_plan() {
        let c = Cluster::new(ClusterConfig::new(2, 0));
        c.arm_failure(FailurePlan::new("encode", 2, 1));
        assert!(c.failpoint(1, "encode", 1).is_ok());
        assert_eq!(c.failpoint(1, "encode", 2), Err(Fault::NodeDead(1)));
        // other ranks now see the abort
        assert_eq!(c.failpoint(0, "anything", 1), Err(Fault::JobAborted));
    }

    #[test]
    fn failpoint_on_dead_node_reports_dead() {
        let c = Cluster::new(ClusterConfig::new(2, 0));
        c.kill_node(1);
        c.reset_abort();
        assert_eq!(c.failpoint(1, "x", 1), Err(Fault::NodeDead(1)));
    }

    #[test]
    fn ranklist_block_and_round_robin() {
        let b = Ranklist::block(8, 4);
        assert_eq!(b.node_of(0), 0);
        assert_eq!(b.node_of(1), 0);
        assert_eq!(b.node_of(7), 3);
        let rr = Ranklist::round_robin(8, 4);
        assert_eq!(rr.node_of(0), 0);
        assert_eq!(rr.node_of(4), 0);
        assert_eq!(rr.node_of(5), 1);
        assert_eq!(rr.ranks_on(1), vec![1, 5]);
        assert_eq!(rr.sharers_of(1), 2);
    }

    #[test]
    fn repair_moves_ranks_to_spares() {
        let c = Cluster::new(ClusterConfig::new(2, 1));
        let mut rl = Ranklist::round_robin(4, 2);
        c.kill_node(1);
        c.reset_abort();
        let moved = rl.repair(&c).unwrap();
        assert_eq!(moved.len(), 2, "two ranks lived on node 1");
        for (_, old, new) in &moved {
            assert_eq!(*old, 1);
            assert_eq!(*new, 2);
        }
        assert_eq!(rl.node_of(1), 2);
        assert_eq!(rl.node_of(3), 2);
        // nothing dead now, repair is a no-op
        assert!(rl.repair(&c).unwrap().is_empty());
    }

    #[test]
    fn repair_fails_without_spares() {
        let c = Cluster::new(ClusterConfig::new(2, 0));
        let mut rl = Ranklist::round_robin(2, 2);
        c.kill_node(0);
        c.reset_abort();
        assert_eq!(rl.repair(&c), Err(0));
    }

    #[test]
    fn corrupt_now_flips_one_bit_and_emits() {
        use crate::failure::Region;
        let c = Cluster::new(ClusterConfig::new(1, 0));
        let rec = Arc::new(crate::events::Recorder::new());
        c.events()
            .subscribe(Arc::clone(&rec) as Arc<dyn crate::events::Observer>);
        c.shm(0)
            .get_or_create("job/r0/b", || crate::shm::SegmentData::F64(vec![0.0; 4]));
        let plan = crate::failure::CorruptPlan::new("p", 1, 0, Region::CopyB, 9, 2);
        assert!(c.corrupt_now(&plan));
        let seg = c.shm(0).attach("job/r0/b").unwrap();
        // byte 9 lives in element 1; bit 2 of that byte is bit 10 of the word
        assert_eq!(seg.read().as_f64()[1].to_bits(), 1u64 << 10);
        assert_eq!(
            rec.count(|e| matches!(
                e,
                Event::CorruptionInjected {
                    node: 0,
                    region: "b"
                }
            )),
            1
        );
        // flipping again restores the original bits (xor involution)
        assert!(c.corrupt_now(&plan));
        assert_eq!(seg.read().as_f64()[1].to_bits(), 0);
    }

    #[test]
    fn corrupt_now_on_missing_region_is_a_noop() {
        use crate::failure::Region;
        let c = Cluster::new(ClusterConfig::new(1, 0));
        let plan = crate::failure::CorruptPlan::new("p", 1, 0, Region::Header, 0, 0);
        assert!(!c.corrupt_now(&plan), "no segment to damage");
    }

    #[test]
    fn armed_corrupt_plan_fires_at_failpoint_without_killing() {
        use crate::failure::{CorruptPlan, Region};
        let c = Cluster::new(ClusterConfig::new(1, 0));
        c.shm(0).get_or_create("job/r0/header", || {
            crate::shm::SegmentData::Bytes(vec![0; 8])
        });
        c.arm_fault(CorruptPlan::new("computing", 2, 0, Region::Header, 3, 5));
        assert!(c.failpoint(0, "computing", 1).is_ok());
        assert!(
            c.failpoint(0, "computing", 2).is_ok(),
            "corruption is silent"
        );
        assert!(c.node_alive(0));
        assert!(!c.aborted());
        let seg = c.shm(0).attach("job/r0/header").unwrap();
        assert_eq!(seg.read().as_bytes()[3], 1 << 5);
    }

    #[test]
    fn local_disk_survives_node_loss() {
        let c = Cluster::new(ClusterConfig::new(1, 0));
        c.hdd(0).write("ckpt", vec![1, 2, 3], 1);
        c.kill_node(0);
        assert!(c.hdd(0).read("ckpt", 1).is_some(), "platters keep data");
    }
}
