//! α-β network cost model.
//!
//! Local runs measure real wall time, but the paper's large-scale numbers
//! (Figure 13 encoding times on Tianhe-1A/2, Figure 10 cycle phases) depend
//! on interconnect characteristics we cannot reproduce on one machine. The
//! standard α-β model — a message of `n` bytes costs `α + n·β` — plus a
//! per-node port-sharing factor captures exactly the effect the paper
//! highlights: Tianhe-2 encodes *slower* than Tianhe-1A despite a faster
//! link because 24 processes share one port instead of 12 (§6.6).

use std::time::Duration;

/// Why a [`NetModel`] could not be built. Every transfer-time formula
/// divides by `bandwidth / procs_per_port`, so a zero or negative (or
/// NaN/infinite) parameter would silently turn every downstream modeled
/// duration into `inf`/NaN — caught here once, at construction.
#[non_exhaustive]
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NetModelError {
    /// `alpha` was negative, NaN, or infinite.
    BadAlpha,
    /// `bandwidth` was non-positive, NaN, or infinite.
    BadBandwidth,
    /// `procs_per_port` was zero.
    BadProcsPerPort,
}

impl std::fmt::Display for NetModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetModelError::BadAlpha => write!(f, "net model: alpha must be finite and >= 0"),
            NetModelError::BadBandwidth => {
                write!(f, "net model: bandwidth must be finite and > 0")
            }
            NetModelError::BadProcsPerPort => {
                write!(f, "net model: procs_per_port must be >= 1")
            }
        }
    }
}

impl std::error::Error for NetModelError {}

/// Per-link α-β model with port sharing.
#[derive(Clone, Copy, Debug)]
pub struct NetModel {
    /// Message latency, seconds.
    pub alpha: f64,
    /// Point-to-point link bandwidth, bytes/second (per node port).
    pub bandwidth: f64,
    /// Processes sharing one network port on a node.
    pub procs_per_port: usize,
}

impl NetModel {
    /// Build a model; `bandwidth` is the node's P2P bandwidth as in the
    /// paper's Table 2. Panics on invalid parameters — use
    /// [`Self::try_new`] to handle them as values.
    pub fn new(alpha: f64, bandwidth: f64, procs_per_port: usize) -> Self {
        Self::try_new(alpha, bandwidth, procs_per_port).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible constructor: rejects non-finite or non-positive
    /// parameters with a typed [`NetModelError`] instead of letting a
    /// zero bandwidth produce infinite transfer times downstream.
    pub fn try_new(
        alpha: f64,
        bandwidth: f64,
        procs_per_port: usize,
    ) -> Result<Self, NetModelError> {
        if !alpha.is_finite() || alpha < 0.0 {
            return Err(NetModelError::BadAlpha);
        }
        if !bandwidth.is_finite() || bandwidth <= 0.0 {
            return Err(NetModelError::BadBandwidth);
        }
        if procs_per_port < 1 {
            return Err(NetModelError::BadProcsPerPort);
        }
        Ok(NetModel {
            alpha,
            bandwidth,
            procs_per_port,
        })
    }

    /// Effective per-process bandwidth once every process on the node is
    /// driving the port at the same time (the encoding phase does exactly
    /// that).
    pub fn per_process_bandwidth(&self) -> f64 {
        self.bandwidth / self.procs_per_port as f64
    }

    /// Time for one point-to-point message of `bytes`.
    pub fn p2p(&self, bytes: usize) -> Duration {
        Duration::from_secs_f64(self.alpha + bytes as f64 / self.per_process_bandwidth())
    }

    /// Modeled time for a `reduce` of `bytes` per process over a group of
    /// `n` processes using a binomial tree: `ceil(log2 n)` rounds, each
    /// moving the full payload.
    pub fn reduce_tree(&self, bytes: usize, n: usize) -> Duration {
        if n <= 1 {
            return Duration::ZERO;
        }
        let rounds = (n as f64).log2().ceil();
        Duration::from_secs_f64(rounds * (self.alpha + bytes as f64 / self.per_process_bandwidth()))
    }

    /// Modeled time for the paper's stripe-based group encoding: every
    /// process reduces one stripe of `stripe_bytes` from the `n-1` others
    /// (a reduce-scatter). With all stripes proceeding concurrently and
    /// each process both sending and receiving its share, the bytes on the
    /// busiest port are `(n-1) · stripe_bytes`, paid at per-process
    /// bandwidth, plus `n-1` message latencies.
    pub fn stripe_encode(&self, stripe_bytes: usize, n: usize) -> Duration {
        if n <= 1 {
            return Duration::ZERO;
        }
        let bytes = (n - 1) as f64 * stripe_bytes as f64;
        Duration::from_secs_f64((n - 1) as f64 * self.alpha + bytes / self.per_process_bandwidth())
    }

    /// Modeled time for naive root-gather encoding (everyone sends their
    /// whole buffer of `data_bytes` to one root): the root's port receives
    /// `(n-1) · data_bytes` — the single-node contention the stripe scheme
    /// avoids (§2.1).
    pub fn root_gather_encode(&self, data_bytes: usize, n: usize) -> Duration {
        if n <= 1 {
            return Duration::ZERO;
        }
        let bytes = (n - 1) as f64 * data_bytes as f64;
        Duration::from_secs_f64(self.alpha + bytes / self.per_process_bandwidth())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> NetModel {
        // ~7 GB/s port, 12 procs/port, 2 µs latency (Tianhe-1A-ish)
        NetModel::new(2e-6, 6.9e9, 12)
    }

    #[test]
    fn p2p_time_scales_with_bytes() {
        let m = model();
        let t1 = m.p2p(1 << 20).as_secs_f64();
        let t2 = m.p2p(1 << 21).as_secs_f64();
        assert!(t2 > t1 * 1.9 && t2 < t1 * 2.1);
    }

    #[test]
    fn port_sharing_slows_per_process_rate() {
        let fast = NetModel::new(1e-6, 7.1e9, 12);
        let slow = NetModel::new(1e-6, 7.1e9, 24);
        assert!(slow.p2p(1 << 24) > fast.p2p(1 << 24));
    }

    #[test]
    fn tianhe2_encodes_slower_despite_faster_link() {
        // The §6.6 observation: faster link, more sharing, slower encode.
        let th1a = NetModel::new(2e-6, 6.9e9, 12);
        let th2 = NetModel::new(2e-6, 7.1e9, 24);
        let stripe = 64 << 20;
        assert!(th2.stripe_encode(stripe, 16) > th1a.stripe_encode(stripe, 16));
    }

    #[test]
    fn stripe_beats_root_gather_for_equal_totals() {
        // total data M per process, group n: stripe = M/(n-1) per slot.
        let m = model();
        let n = 8;
        let data = 512 << 20;
        let stripe = data / (n - 1);
        assert!(
            m.stripe_encode(stripe, n) < m.root_gather_encode(data, n),
            "distributed parity must beat root-gather"
        );
    }

    #[test]
    fn encode_time_grows_slowly_with_group_size() {
        // Figure 13: per-process data fixed, larger groups encode only
        // slightly slower (stripes shrink as 1/(n-1) while rounds grow).
        let m = model();
        let data: usize = 1 << 30;
        let t4 = m.stripe_encode(data / 3, 4).as_secs_f64();
        let t16 = m.stripe_encode(data / 15, 16).as_secs_f64();
        let ratio = t16 / t4;
        assert!(
            ratio < 2.0,
            "group 16 should not be 2x slower than group 4 (ratio {ratio})"
        );
    }

    #[test]
    fn trivial_groups_cost_nothing() {
        let m = model();
        assert_eq!(m.reduce_tree(1024, 1), Duration::ZERO);
        assert_eq!(m.stripe_encode(1024, 1), Duration::ZERO);
        assert_eq!(m.root_gather_encode(1024, 0), Duration::ZERO);
    }

    #[test]
    fn try_new_rejects_degenerate_parameters() {
        assert_eq!(
            NetModel::try_new(-1e-6, 1e9, 1).unwrap_err(),
            NetModelError::BadAlpha
        );
        assert_eq!(
            NetModel::try_new(f64::NAN, 1e9, 1).unwrap_err(),
            NetModelError::BadAlpha
        );
        assert_eq!(
            NetModel::try_new(1e-6, 0.0, 1).unwrap_err(),
            NetModelError::BadBandwidth
        );
        assert_eq!(
            NetModel::try_new(1e-6, -5.0, 1).unwrap_err(),
            NetModelError::BadBandwidth
        );
        assert_eq!(
            NetModel::try_new(1e-6, f64::INFINITY, 1).unwrap_err(),
            NetModelError::BadBandwidth
        );
        assert_eq!(
            NetModel::try_new(1e-6, 1e9, 0).unwrap_err(),
            NetModelError::BadProcsPerPort
        );
        let ok = NetModel::try_new(0.0, 1e9, 2).unwrap();
        assert!(ok.p2p(1 << 20).as_secs_f64().is_finite());
    }

    #[test]
    #[should_panic(expected = "bandwidth must be finite and > 0")]
    fn new_panics_with_the_typed_message() {
        NetModel::new(1e-6, 0.0, 1);
    }
}
