//! Bandwidth/latency-modeled block storage devices.
//!
//! Table 3 of the paper compares checkpoint methods whose cost is dominated
//! by where the checkpoint bytes go: HDD (~100 MB/s), SSD (~500 MB/s), or
//! memory. The devices here *really store* the bytes (so BLCR-style
//! recovery actually restores data) and additionally report the modeled
//! transfer time so experiments can charge realistic I/O cost without
//! wall-clock sleeping.

use crate::events::{Event, EventBus};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::time::Duration;

/// Device technology, with the paper-calibrated default speeds.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DeviceKind {
    /// Spinning disk: ~100 MB/s sequential, ~8 ms seek.
    Hdd,
    /// SATA/NVMe flash: ~500 MB/s, ~0.1 ms.
    Ssd,
    /// RAM-backed file system: ~8 GB/s, ~1 µs.
    Ramfs,
    /// Shared parallel file system: per-client ~200 MB/s, ~1 ms, and
    /// heavily contended when many clients write at once.
    Pfs,
}

impl DeviceKind {
    /// Default sequential bandwidth in bytes/second.
    pub fn bandwidth(self) -> f64 {
        match self {
            DeviceKind::Hdd => 100.0e6,
            DeviceKind::Ssd => 500.0e6,
            DeviceKind::Ramfs => 8.0e9,
            DeviceKind::Pfs => 200.0e6,
        }
    }

    /// Default access latency in seconds.
    pub fn latency(self) -> f64 {
        match self {
            DeviceKind::Hdd => 8.0e-3,
            DeviceKind::Ssd => 1.0e-4,
            DeviceKind::Ramfs => 1.0e-6,
            DeviceKind::Pfs => 1.0e-3,
        }
    }

    /// Canonical lowercase name, used as the `device` field of storage
    /// [`Event`]s.
    pub fn name(self) -> &'static str {
        match self {
            DeviceKind::Hdd => "hdd",
            DeviceKind::Ssd => "ssd",
            DeviceKind::Ramfs => "ramfs",
            DeviceKind::Pfs => "pfs",
        }
    }
}

/// A block store holding named blobs, with a transfer-time model.
pub struct Device {
    kind: DeviceKind,
    bandwidth: f64,
    latency: f64,
    blobs: Mutex<BTreeMap<String, Vec<u8>>>,
    bus: Option<EventBus>,
}

impl Device {
    /// Device with the default speed for its kind.
    pub fn new(kind: DeviceKind) -> Self {
        Device {
            kind,
            bandwidth: kind.bandwidth(),
            latency: kind.latency(),
            blobs: Mutex::new(BTreeMap::new()),
            bus: None,
        }
    }

    /// Device with custom speeds (for calibration experiments).
    pub fn with_speeds(kind: DeviceKind, bandwidth: f64, latency: f64) -> Self {
        assert!(bandwidth > 0.0 && latency >= 0.0);
        Device {
            kind,
            bandwidth,
            latency,
            blobs: Mutex::new(BTreeMap::new()),
            bus: None,
        }
    }

    /// Attach an [`EventBus`]; subsequent reads/writes emit storage events.
    #[must_use]
    pub fn with_bus(mut self, bus: EventBus) -> Self {
        self.bus = Some(bus);
        self
    }

    /// The device technology.
    pub fn kind(&self) -> DeviceKind {
        self.kind
    }

    /// Modeled time to move `bytes` through this device with `sharers`
    /// concurrent clients on the same device (ranks of one node writing
    /// their checkpoints together divide the bandwidth).
    pub fn transfer_time(&self, bytes: usize, sharers: usize) -> Duration {
        let sharers = sharers.max(1) as f64;
        let secs = self.latency + bytes as f64 * sharers / self.bandwidth;
        Duration::from_secs_f64(secs)
    }

    /// Store a blob; returns the modeled write time.
    pub fn write(&self, name: &str, data: Vec<u8>, sharers: usize) -> Duration {
        let t = self.transfer_time(data.len(), sharers);
        if let Some(bus) = &self.bus {
            bus.emit(Event::StorageWrite {
                device: self.kind.name(),
                bytes: data.len() as u64,
                modeled: t,
            });
        }
        self.blobs.lock().insert(name.to_string(), data);
        t
    }

    /// Read a blob back, with its modeled read time.
    pub fn read(&self, name: &str, sharers: usize) -> Option<(Vec<u8>, Duration)> {
        let blobs = self.blobs.lock();
        let data = blobs.get(name)?.clone();
        let t = self.transfer_time(data.len(), sharers);
        if let Some(bus) = &self.bus {
            bus.emit(Event::StorageRead {
                device: self.kind.name(),
                bytes: data.len() as u64,
                modeled: t,
            });
        }
        Some((data, t))
    }

    /// Remove a blob.
    pub fn remove(&self, name: &str) -> bool {
        self.blobs.lock().remove(name).is_some()
    }

    /// Bytes currently stored.
    pub fn used_bytes(&self) -> usize {
        self.blobs.lock().values().map(|v| v.len()).sum()
    }

    /// Drop everything (device reformat / node reprovision).
    pub fn clear(&self) {
        self.blobs.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hdd_is_slower_than_ssd_than_ramfs() {
        let b = 1 << 30; // 1 GiB
        let hdd = Device::new(DeviceKind::Hdd).transfer_time(b, 1);
        let ssd = Device::new(DeviceKind::Ssd).transfer_time(b, 1);
        let ram = Device::new(DeviceKind::Ramfs).transfer_time(b, 1);
        assert!(hdd > ssd && ssd > ram);
        // 1 GiB over 100 MB/s ≈ 10.7 s
        assert!((hdd.as_secs_f64() - 10.74).abs() < 0.2, "hdd time {hdd:?}");
    }

    #[test]
    fn sharers_divide_bandwidth() {
        let d = Device::new(DeviceKind::Ssd);
        let alone = d.transfer_time(1 << 20, 1).as_secs_f64();
        let shared = d.transfer_time(1 << 20, 4).as_secs_f64();
        assert!(shared > alone * 3.5, "4 sharers should ~4x the time");
    }

    #[test]
    fn write_read_round_trip() {
        let d = Device::new(DeviceKind::Hdd);
        let data = vec![7u8; 1000];
        let tw = d.write("ckpt", data.clone(), 2);
        assert!(tw > Duration::ZERO);
        let (back, tr) = d.read("ckpt", 2).unwrap();
        assert_eq!(back, data);
        assert!(tr > Duration::ZERO);
        assert_eq!(d.used_bytes(), 1000);
        assert!(d.remove("ckpt"));
        assert!(d.read("ckpt", 1).is_none());
    }

    #[test]
    fn zero_byte_transfer_still_pays_latency() {
        let d = Device::new(DeviceKind::Hdd);
        assert!(d.transfer_time(0, 1) >= Duration::from_millis(7));
    }

    #[test]
    fn storage_events_reach_subscribed_observer() {
        use crate::events::{EventBus, Recorder};
        use std::sync::Arc;
        let bus = EventBus::new();
        let rec = Arc::new(Recorder::new());
        bus.subscribe(Arc::clone(&rec) as _);
        let d = Device::new(DeviceKind::Ssd).with_bus(bus);
        d.write("blob", vec![0u8; 128], 1);
        d.read("blob", 1).unwrap();
        assert_eq!(
            rec.count(|e| matches!(
                e,
                Event::StorageWrite {
                    device: "ssd",
                    bytes: 128,
                    ..
                }
            )),
            1
        );
        assert_eq!(rec.count(|e| matches!(e, Event::StorageRead { .. })), 1);
    }
}
