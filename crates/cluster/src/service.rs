//! Multi-tenant service substrate: tenant identity, shard placement,
//! admission control, spare-pool arbitration, and a deterministic event
//! queue.
//!
//! One daemon serving many independent jobs needs exactly four things
//! from the cluster layer, and they live here so the job-running engine
//! (`skt-ftsim::service`) stays a pure state machine on top:
//!
//! * **Shard map** — each admitted tenant owns a *disjoint* set of
//!   compute nodes, so no node ever hosts two tenants' ranks or SHM
//!   checkpoints. Isolation is structural, not policed.
//! * **Admission control** — a tenant whose node-count or per-node
//!   memory demand cannot be met *right now* is queued (FIFO, no
//!   overtaking); one whose demand can *never* be met is rejected with a
//!   typed [`AdmitError`].
//! * **Spare arbitration** — every tenant may reserve a spare-node
//!   guarantee at admission. Draws come from the tenant's own reserve
//!   first, then the unreserved float; a cascade that would have to dip
//!   into *another* tenant's reserve is refused with the typed
//!   [`ArbitrationError::WouldStarve`] instead of silently starving the
//!   other tenant's recovery guarantee.
//! * **Event queue** — a `(virtual time, sequence)`-ordered queue the
//!   service loop pops deterministically, so a fixed `(config, seed)`
//!   replays the same cross-tenant interleaving bit for bit.

use crate::cluster::NodeId;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};
use std::time::Duration;

/// Tenant identifier, assigned at registration in order (`t0`, `t1`, …).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(pub u32);

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// What a tenant asks the service for.
#[derive(Clone, Debug)]
pub struct TenantSpec {
    /// Unique tenant name — also the tenant's SHM namespace prefix, so
    /// duplicate names would alias checkpoint segments and are refused.
    pub name: String,
    /// Compute nodes demanded (the tenant's shard size).
    pub nodes: usize,
    /// Bytes of node memory the job will pin per node (workspace +
    /// checkpoint + checksum regions).
    pub mem_bytes_per_node: u64,
    /// Spares this tenant wants *guaranteed* for its own recoveries.
    /// Zero means best-effort: draw from the float only.
    pub spare_guarantee: usize,
}

/// Outcome of [`ServicePool::admit`].
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum Admission {
    /// Admitted now, on these nodes (disjoint from every other shard).
    Admitted {
        /// The new tenant's id.
        tenant: TenantId,
        /// Nodes assigned to the shard, ascending.
        nodes: Vec<NodeId>,
    },
    /// Demand is satisfiable but not right now; the tenant waits in a
    /// FIFO queue and is admitted when capacity frees (no overtaking).
    Queued {
        /// The new tenant's id (already assigned; stable across the wait).
        tenant: TenantId,
        /// Position in the wait queue at registration time (0 = next).
        position: usize,
    },
}

/// Why admission is refused outright (the demand can *never* be met on
/// this pool, so queueing would be a silent hang).
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum AdmitError {
    /// A tenant with this name already exists (alive or queued).
    DuplicateName(String),
    /// The shard demand exceeds the pool's total compute-node count.
    NeverFits {
        /// Nodes demanded.
        demanded: usize,
        /// Compute nodes the pool has in total.
        total: usize,
    },
    /// The per-node memory demand exceeds a node's capacity.
    MemoryOversubscribed {
        /// Bytes demanded per node.
        demanded: u64,
        /// Bytes a node can hold.
        capacity: u64,
    },
    /// The spare guarantee exceeds the pool's total spare count.
    GuaranteeUnmeetable {
        /// Spares demanded as a guarantee.
        demanded: usize,
        /// Spares the pool has in total.
        total: usize,
    },
    /// A zero-node shard is meaningless.
    ZeroNodes(String),
}

impl std::fmt::Display for AdmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmitError::DuplicateName(n) => write!(f, "tenant name '{n}' already registered"),
            AdmitError::NeverFits { demanded, total } => {
                write!(
                    f,
                    "shard of {demanded} nodes can never fit a {total}-node pool"
                )
            }
            AdmitError::MemoryOversubscribed { demanded, capacity } => {
                write!(f, "{demanded} B/node demanded, nodes hold {capacity} B")
            }
            AdmitError::GuaranteeUnmeetable { demanded, total } => {
                write!(
                    f,
                    "guarantee of {demanded} spares exceeds the pool's {total}"
                )
            }
            AdmitError::ZeroNodes(n) => write!(f, "tenant '{n}' demands zero nodes"),
        }
    }
}

impl std::error::Error for AdmitError {}

/// Why a spare draw is refused. Both variants are *collective verdicts*
/// of the arbitration layer: the requesting tenant's cascade stops with
/// a typed answer instead of silently consuming what another tenant was
/// guaranteed.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ArbitrationError {
    /// Granting the draw would dip into spares *reserved for other
    /// tenants*: the pool still holds nodes, but they are someone else's
    /// recovery guarantee.
    WouldStarve {
        /// The refused tenant.
        tenant: TenantId,
        /// Spares the cascade needs.
        requested: usize,
        /// What remains of the tenant's own reservation.
        own_reserve: usize,
        /// Unreserved spares available to anyone.
        float: usize,
        /// Spares currently reserved for *other* tenants — the quantity
        /// this refusal protects.
        reserved_elsewhere: usize,
    },
    /// The pool is simply dry: no reserve, no float, and nothing
    /// reserved elsewhere either.
    Exhausted {
        /// The refused tenant.
        tenant: TenantId,
        /// Spares the cascade needs.
        requested: usize,
        /// Spares actually available to this tenant (reserve + float).
        available: usize,
    },
    /// The tenant is not (or no longer) admitted.
    UnknownTenant(TenantId),
}

impl std::fmt::Display for ArbitrationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArbitrationError::WouldStarve {
                tenant,
                requested,
                own_reserve,
                float,
                reserved_elsewhere,
            } => write!(
                f,
                "{tenant}: drawing {requested} spare(s) would starve other tenants' \
                 guarantees (own reserve {own_reserve}, float {float}, \
                 {reserved_elsewhere} reserved elsewhere)"
            ),
            ArbitrationError::Exhausted {
                tenant,
                requested,
                available,
            } => write!(
                f,
                "{tenant}: {requested} spare(s) requested, {available} available, none \
                 reserved elsewhere — pool exhausted"
            ),
            ArbitrationError::UnknownTenant(t) => write!(f, "{t}: not an admitted tenant"),
        }
    }
}

impl std::error::Error for ArbitrationError {}

/// Receipt of a granted spare draw: where the spares were accounted
/// from. Reserve is consumed before float, so a tenant's guarantee is
/// the *last* thing its own cascade burns.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpareGrant {
    /// Spares taken from the tenant's own reservation.
    pub from_reserve: usize,
    /// Spares taken from the unreserved float.
    pub from_float: usize,
}

struct Shard {
    spec: TenantSpec,
    nodes: Vec<NodeId>,
    /// Remaining reserved spares of this tenant's guarantee.
    reserve: usize,
}

/// How a shard's node set would change under a resize or relocation.
/// Computed by [`ServicePool::plan_resize`] / [`ServicePool::plan_relocate`]
/// *without consuming anything*, so a refusal downstream is free; the
/// caller materializes the move and then [`ServicePool::commit_resize`]s.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ResizePlan {
    /// Shard nodes retained across the resize (ascending).
    pub keep: Vec<NodeId>,
    /// Nodes staged from the free pool (ascending draw, not yet drawn).
    pub add: Vec<NodeId>,
    /// Shard nodes vacated back to the free pool (ascending).
    pub vacate: Vec<NodeId>,
}

impl ResizePlan {
    /// The shard's node set after this plan commits (ascending).
    pub fn new_nodes(&self) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self.keep.iter().chain(&self.add).copied().collect();
        v.sort_unstable();
        v
    }

    /// True when the plan changes nothing.
    pub fn is_noop(&self) -> bool {
        self.add.is_empty() && self.vacate.is_empty()
    }
}

/// Why the pool refuses to plan a resize. Mirrors admission's typed
/// refusals: a demand that can *never* fit is distinguished from one the
/// pool cannot satisfy *right now* without starving the free pool.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ReshapeError {
    /// The tenant is not (or no longer) admitted.
    UnknownTenant(TenantId),
    /// The target shard exceeds the pool's total compute-node count.
    NeverFits {
        /// Nodes demanded.
        demanded: usize,
        /// Compute nodes the pool has in total.
        total: usize,
    },
    /// The grow needs more free nodes than the pool holds right now.
    WouldStarve {
        /// The refused tenant.
        tenant: TenantId,
        /// Extra nodes the grow needs.
        requested: usize,
        /// Free nodes actually available.
        free: usize,
    },
    /// The post-resize per-node memory demand exceeds node capacity.
    Oversubscribed {
        /// Bytes demanded per node after the resize.
        demanded: u64,
        /// Bytes a node can hold.
        capacity: u64,
    },
}

impl std::fmt::Display for ReshapeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReshapeError::UnknownTenant(t) => write!(f, "{t}: not an admitted tenant"),
            ReshapeError::NeverFits { demanded, total } => {
                write!(
                    f,
                    "resize to {demanded} nodes can never fit a {total}-node pool"
                )
            }
            ReshapeError::WouldStarve {
                tenant,
                requested,
                free,
            } => write!(
                f,
                "{tenant}: grow needs {requested} free node(s), pool has {free}"
            ),
            ReshapeError::Oversubscribed { demanded, capacity } => {
                write!(f, "{demanded} B/node demanded, nodes hold {capacity} B")
            }
        }
    }
}

impl std::error::Error for ReshapeError {}

/// Audit of a [`ServicePool::release`]: which nodes actually returned to
/// the free pool, which were lost (dead at release time), and which
/// queued tenants the freed capacity admitted. The caller folds `freed`
/// into the tenant's isolation report so vacated nodes show as wiped,
/// not leaked.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ReleaseAudit {
    /// Vacated nodes returned to the free pool (ascending).
    pub freed: Vec<NodeId>,
    /// Vacated nodes that were dead and thus dropped (ascending).
    pub lost: Vec<NodeId>,
    /// Queued tenants admitted by the freed capacity, FIFO.
    pub drained: Vec<(TenantId, Vec<NodeId>)>,
}

/// The service's node and spare ledger: disjoint shards over a common
/// compute pool, FIFO admission queue, and reservation-aware spare
/// accounting. Purely bookkeeping — the caller moves the actual nodes
/// (via `Ranklist::repair` / `Cluster::take_spare`) and reports back
/// with [`ServicePool::reassign`].
pub struct ServicePool {
    capacity_per_node: u64,
    total_nodes: usize,
    free: Vec<NodeId>,
    shards: BTreeMap<TenantId, Shard>,
    names: BTreeMap<String, TenantId>,
    queue: VecDeque<(TenantId, TenantSpec)>,
    spares_total: usize,
    float: usize,
    next: u32,
}

impl ServicePool {
    /// A pool over `compute` nodes (typically `0..nodes`) with `spares`
    /// spare nodes and `capacity_per_node` bytes of memory per node
    /// (`u64::MAX` for "don't model memory").
    pub fn new(compute: Vec<NodeId>, spares: usize, capacity_per_node: u64) -> Self {
        let mut free = compute;
        free.sort_unstable();
        free.dedup();
        ServicePool {
            capacity_per_node,
            total_nodes: free.len(),
            free,
            shards: BTreeMap::new(),
            names: BTreeMap::new(),
            queue: VecDeque::new(),
            spares_total: spares,
            float: spares,
            next: 0,
        }
    }

    /// Register a tenant: admit immediately if the shard and guarantee
    /// fit, queue FIFO if they fit in principle but not now, refuse with
    /// a typed error if they can never fit.
    pub fn admit(&mut self, spec: TenantSpec) -> Result<Admission, AdmitError> {
        if spec.nodes == 0 {
            return Err(AdmitError::ZeroNodes(spec.name));
        }
        if self.names.contains_key(&spec.name) {
            return Err(AdmitError::DuplicateName(spec.name));
        }
        if spec.nodes > self.total_nodes {
            return Err(AdmitError::NeverFits {
                demanded: spec.nodes,
                total: self.total_nodes,
            });
        }
        if spec.mem_bytes_per_node > self.capacity_per_node {
            return Err(AdmitError::MemoryOversubscribed {
                demanded: spec.mem_bytes_per_node,
                capacity: self.capacity_per_node,
            });
        }
        if spec.spare_guarantee > self.spares_total {
            return Err(AdmitError::GuaranteeUnmeetable {
                demanded: spec.spare_guarantee,
                total: self.spares_total,
            });
        }
        let tenant = TenantId(self.next);
        self.next += 1;
        self.names.insert(spec.name.clone(), tenant);
        // No overtaking: while anyone is queued, newcomers queue behind
        // them even if their own (smaller) demand would fit right now.
        if self.queue.is_empty() && self.fits_now(&spec) {
            let nodes = self.place(tenant, spec);
            Ok(Admission::Admitted { tenant, nodes })
        } else {
            self.queue.push_back((tenant, spec));
            Ok(Admission::Queued {
                tenant,
                position: self.queue.len() - 1,
            })
        }
    }

    fn fits_now(&self, spec: &TenantSpec) -> bool {
        spec.nodes <= self.free.len() && spec.spare_guarantee <= self.float
    }

    fn place(&mut self, tenant: TenantId, spec: TenantSpec) -> Vec<NodeId> {
        let nodes: Vec<NodeId> = self.free.drain(..spec.nodes).collect();
        self.float -= spec.spare_guarantee;
        self.shards.insert(
            tenant,
            Shard {
                reserve: spec.spare_guarantee,
                nodes: nodes.clone(),
                spec,
            },
        );
        nodes
    }

    /// Release a finished (or refused) tenant: nodes for which `alive`
    /// holds return to the free pool, the unspent reserve returns to the
    /// float, and the wait queue is drained in FIFO order. The audit
    /// names every vacated node — freed or lost — so the caller can wipe
    /// and report them instead of flagging them as leaks.
    pub fn release(&mut self, tenant: TenantId, alive: impl Fn(NodeId) -> bool) -> ReleaseAudit {
        let mut audit = ReleaseAudit::default();
        if let Some(shard) = self.shards.remove(&tenant) {
            self.names.remove(&shard.spec.name);
            self.float += shard.reserve;
            for n in shard.nodes {
                if alive(n) {
                    self.free.push(n);
                    audit.freed.push(n);
                } else {
                    audit.lost.push(n);
                }
            }
            self.free.sort_unstable();
            audit.freed.sort_unstable();
            audit.lost.sort_unstable();
        }
        audit.drained = self.drain_queue();
        audit
    }

    /// Drop dead nodes from the free pool (a storm can kill an
    /// unassigned node; it must not be handed to a future tenant).
    /// Returns the nodes dropped, ascending.
    pub fn purge_free(&mut self, alive: impl Fn(NodeId) -> bool) -> Vec<NodeId> {
        let mut dropped: Vec<NodeId> = self.free.iter().copied().filter(|&n| !alive(n)).collect();
        self.free.retain(|&n| alive(n));
        dropped.sort_unstable();
        dropped
    }

    /// Plan a resize of `tenant`'s shard to `target` nodes with
    /// `mem_bytes_per_node` demanded after the resize. Pure preview:
    /// nothing is drawn or vacated until [`ServicePool::commit_resize`].
    ///
    /// Grows stage the lowest free nodes (same ascending draw as
    /// admission); shrinks vacate the highest shard nodes, so repeated
    /// resizes keep every shard packed toward low node ids.
    pub fn plan_resize(
        &self,
        tenant: TenantId,
        target: usize,
        mem_bytes_per_node: u64,
    ) -> Result<ResizePlan, ReshapeError> {
        let Some(shard) = self.shards.get(&tenant) else {
            return Err(ReshapeError::UnknownTenant(tenant));
        };
        if target > self.total_nodes {
            return Err(ReshapeError::NeverFits {
                demanded: target,
                total: self.total_nodes,
            });
        }
        if mem_bytes_per_node > self.capacity_per_node {
            return Err(ReshapeError::Oversubscribed {
                demanded: mem_bytes_per_node,
                capacity: self.capacity_per_node,
            });
        }
        let cur = shard.nodes.len();
        if target >= cur {
            let extra = target - cur;
            if extra > self.free.len() {
                return Err(ReshapeError::WouldStarve {
                    tenant,
                    requested: extra,
                    free: self.free.len(),
                });
            }
            Ok(ResizePlan {
                keep: shard.nodes.clone(),
                add: self.free[..extra].to_vec(),
                vacate: Vec::new(),
            })
        } else {
            // Shrink: vacate the highest shard nodes.
            let mut nodes = shard.nodes.clone();
            nodes.sort_unstable();
            let vacate = nodes.split_off(target);
            Ok(ResizePlan {
                keep: nodes,
                add: Vec::new(),
                vacate,
            })
        }
    }

    /// Plan a same-size relocation that packs `tenant`'s shard onto the
    /// lowest node ids reachable from its current set plus the free
    /// pool — the defragmenter's move. Returns `None` when the shard is
    /// already as low as it can get (no strict improvement).
    pub fn plan_relocate(&self, tenant: TenantId) -> Option<ResizePlan> {
        let shard = self.shards.get(&tenant)?;
        let mut candidates: Vec<NodeId> = shard.nodes.iter().chain(&self.free).copied().collect();
        candidates.sort_unstable();
        candidates.truncate(shard.nodes.len());
        let keep: Vec<NodeId> = shard
            .nodes
            .iter()
            .copied()
            .filter(|n| candidates.contains(n))
            .collect();
        let add: Vec<NodeId> = candidates
            .iter()
            .copied()
            .filter(|n| !shard.nodes.contains(n))
            .collect();
        let vacate: Vec<NodeId> = shard
            .nodes
            .iter()
            .copied()
            .filter(|n| !candidates.contains(n))
            .collect();
        if add.is_empty() {
            return None; // already packed as low as possible
        }
        Some(ResizePlan { keep, add, vacate })
    }

    /// Commit a previously planned resize: draw the staged nodes from
    /// the free pool, return the vacated *alive* nodes to it, rewrite
    /// the shard and its spec, and drain the FIFO queue (a shrink can
    /// admit a waiting tenant). Returns the audit of what moved.
    ///
    /// The plan must still be consistent with the pool (the staged nodes
    /// free, the tenant admitted) — callers re-plan after any pool
    /// mutation rather than committing a stale plan.
    pub fn commit_resize(
        &mut self,
        tenant: TenantId,
        plan: &ResizePlan,
        mem_bytes_per_node: u64,
        alive: impl Fn(NodeId) -> bool,
    ) -> ReleaseAudit {
        let mut audit = ReleaseAudit::default();
        if let Some(shard) = self.shards.get_mut(&tenant) {
            debug_assert!(
                plan.add.iter().all(|n| self.free.contains(n)),
                "stale resize plan: staged node no longer free"
            );
            self.free.retain(|n| !plan.add.contains(n));
            for &n in &plan.vacate {
                if alive(n) {
                    self.free.push(n);
                    audit.freed.push(n);
                } else {
                    audit.lost.push(n);
                }
            }
            self.free.sort_unstable();
            audit.freed.sort_unstable();
            audit.lost.sort_unstable();
            shard.nodes = plan.new_nodes();
            shard.spec.nodes = shard.nodes.len();
            shard.spec.mem_bytes_per_node = mem_bytes_per_node;
        }
        audit.drained = self.drain_queue();
        audit
    }

    fn drain_queue(&mut self) -> Vec<(TenantId, Vec<NodeId>)> {
        let mut admitted = Vec::new();
        while let Some((tenant, spec)) = self.queue.front() {
            if !self.fits_now(spec) {
                break; // FIFO: the head blocks; no overtaking
            }
            let (tenant, spec) = (*tenant, spec.clone());
            self.queue.pop_front();
            let nodes = self.place(tenant, spec);
            admitted.push((tenant, nodes));
        }
        admitted
    }

    /// Arbitrated spare draw for `tenant`'s cascade: `k` spares, reserve
    /// before float, typed refusal when the request would dip into other
    /// tenants' guarantees (or the pool is plain dry).
    pub fn draw_spares(
        &mut self,
        tenant: TenantId,
        k: usize,
    ) -> Result<SpareGrant, ArbitrationError> {
        let reserved_elsewhere: usize = self
            .shards
            .iter()
            .filter(|(t, _)| **t != tenant)
            .map(|(_, s)| s.reserve)
            .sum();
        let Some(shard) = self.shards.get_mut(&tenant) else {
            return Err(ArbitrationError::UnknownTenant(tenant));
        };
        let available = shard.reserve + self.float;
        if k > available {
            return Err(if reserved_elsewhere > 0 {
                ArbitrationError::WouldStarve {
                    tenant,
                    requested: k,
                    own_reserve: shard.reserve,
                    float: self.float,
                    reserved_elsewhere,
                }
            } else {
                ArbitrationError::Exhausted {
                    tenant,
                    requested: k,
                    available,
                }
            });
        }
        let from_reserve = k.min(shard.reserve);
        let from_float = k - from_reserve;
        shard.reserve -= from_reserve;
        self.float -= from_float;
        Ok(SpareGrant {
            from_reserve,
            from_float,
        })
    }

    /// Rewrite `tenant`'s shard after the caller materialized a repair
    /// (spares actually drawn, ranklist rewritten). `nodes` is the
    /// shard's new node set.
    pub fn reassign(&mut self, tenant: TenantId, mut nodes: Vec<NodeId>) {
        if let Some(shard) = self.shards.get_mut(&tenant) {
            nodes.sort_unstable();
            nodes.dedup();
            shard.nodes = nodes;
        }
    }

    /// The tenant owning `node`, if any.
    pub fn owner_of(&self, node: NodeId) -> Option<TenantId> {
        self.shards
            .iter()
            .find(|(_, s)| s.nodes.contains(&node))
            .map(|(t, _)| *t)
    }

    /// Nodes of `tenant`'s shard (ascending), if admitted.
    pub fn nodes_of(&self, tenant: TenantId) -> Option<&[NodeId]> {
        self.shards.get(&tenant).map(|s| s.nodes.as_slice())
    }

    /// The tenant registered under `name`, admitted or queued.
    pub fn tenant_by_name(&self, name: &str) -> Option<TenantId> {
        self.names.get(name).copied()
    }

    /// Spec of an *admitted* tenant.
    pub fn spec_of(&self, tenant: TenantId) -> Option<&TenantSpec> {
        self.shards.get(&tenant).map(|s| &s.spec)
    }

    /// Remaining reserved spares of an admitted tenant.
    pub fn reserve_of(&self, tenant: TenantId) -> usize {
        self.shards.get(&tenant).map_or(0, |s| s.reserve)
    }

    /// Unreserved spares available to any tenant's cascade.
    pub fn float(&self) -> usize {
        self.float
    }

    /// Compute nodes currently unassigned.
    pub fn free_nodes(&self) -> usize {
        self.free.len()
    }

    /// Tenants waiting for admission, FIFO.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Admitted tenants, ascending by id.
    pub fn tenants(&self) -> Vec<TenantId> {
        self.shards.keys().copied().collect()
    }
}

struct Queued<K> {
    at: Duration,
    seq: u64,
    kind: K,
}

// Ordered by (at, seq) only — `seq` is unique, so the order is total and
// `kind` never needs comparing.
impl<K> PartialEq for Queued<K> {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.seq) == (other.at, other.seq)
    }
}
impl<K> Eq for Queued<K> {}
impl<K> PartialOrd for Queued<K> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<K> Ord for Queued<K> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Deterministic time-ordered event queue: pops strictly by
/// `(virtual time, insertion sequence)`, so two events at the same
/// instant run in the order they were scheduled — never in allocator or
/// hash order.
pub struct EventQueue<K> {
    heap: BinaryHeap<Reverse<Queued<K>>>,
    seq: u64,
}

impl<K> Default for EventQueue<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K> EventQueue<K> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedule `kind` at virtual time `at`.
    pub fn push(&mut self, at: Duration, kind: K) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Queued { at, seq, kind }));
    }

    /// Pop the earliest event (ties broken by scheduling order).
    pub fn pop(&mut self) -> Option<(Duration, K)> {
        self.heap.pop().map(|Reverse(q)| (q.at, q.kind))
    }

    /// Virtual time of the earliest queued event, if any.
    pub fn next_at(&self) -> Option<Duration> {
        self.heap.peek().map(|Reverse(q)| q.at)
    }

    /// Events still queued.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(name: &str, nodes: usize, guarantee: usize) -> TenantSpec {
        TenantSpec {
            name: name.into(),
            nodes,
            mem_bytes_per_node: 1 << 20,
            spare_guarantee: guarantee,
        }
    }

    fn pool(nodes: usize, spares: usize) -> ServicePool {
        ServicePool::new((0..nodes).collect(), spares, 1 << 30)
    }

    #[test]
    fn admits_disjoint_shards_in_order() {
        let mut p = pool(8, 2);
        let a = p.admit(spec("a", 3, 0)).unwrap();
        let b = p.admit(spec("b", 3, 0)).unwrap();
        assert_eq!(
            a,
            Admission::Admitted {
                tenant: TenantId(0),
                nodes: vec![0, 1, 2]
            }
        );
        assert_eq!(
            b,
            Admission::Admitted {
                tenant: TenantId(1),
                nodes: vec![3, 4, 5]
            }
        );
        assert_eq!(p.owner_of(4), Some(TenantId(1)));
        assert_eq!(p.owner_of(7), None);
        assert_eq!(p.free_nodes(), 2);
    }

    #[test]
    fn admission_at_exact_capacity_succeeds() {
        // Every node and every spare claimed in one admission: the
        // boundary case must be admitted, not queued.
        let mut p = pool(4, 2);
        match p.admit(spec("edge", 4, 2)).unwrap() {
            Admission::Admitted { nodes, .. } => assert_eq!(nodes, vec![0, 1, 2, 3]),
            other => panic!("expected admission at exact capacity, got {other:?}"),
        }
        assert_eq!(p.free_nodes(), 0);
        assert_eq!(p.float(), 0);
        // the next tenant queues (fits in principle) …
        assert!(matches!(
            p.admit(spec("next", 1, 0)).unwrap(),
            Admission::Queued { position: 0, .. }
        ));
        // … and is admitted the moment capacity frees
        let audit = p.release(TenantId(0), |_| true);
        assert_eq!(audit.freed, vec![0, 1, 2, 3]);
        assert!(audit.lost.is_empty());
        assert_eq!(audit.drained.len(), 1);
        assert_eq!(audit.drained[0].0, TenantId(1));
        assert_eq!(audit.drained[0].1, vec![0]);
    }

    #[test]
    fn never_satisfiable_demands_are_rejected_not_queued() {
        let mut p = pool(4, 1);
        assert_eq!(
            p.admit(spec("big", 5, 0)).unwrap_err(),
            AdmitError::NeverFits {
                demanded: 5,
                total: 4
            }
        );
        assert_eq!(
            p.admit(spec("greedy", 2, 2)).unwrap_err(),
            AdmitError::GuaranteeUnmeetable {
                demanded: 2,
                total: 1
            }
        );
        let mut fat = spec("fat", 2, 0);
        fat.mem_bytes_per_node = (1 << 30) + 1;
        assert!(matches!(
            p.admit(fat).unwrap_err(),
            AdmitError::MemoryOversubscribed { .. }
        ));
        assert_eq!(
            p.admit(spec("", 0, 0)).unwrap_err(),
            AdmitError::ZeroNodes("".into())
        );
        assert_eq!(p.queued(), 0, "rejections never queue");
    }

    #[test]
    fn duplicate_names_are_refused_even_while_queued() {
        let mut p = pool(2, 0);
        p.admit(spec("x", 2, 0)).unwrap();
        assert!(matches!(
            p.admit(spec("y", 2, 0)).unwrap(),
            Admission::Queued { .. }
        ));
        assert_eq!(
            p.admit(spec("x", 1, 0)).unwrap_err(),
            AdmitError::DuplicateName("x".into())
        );
        assert_eq!(
            p.admit(spec("y", 1, 0)).unwrap_err(),
            AdmitError::DuplicateName("y".into())
        );
    }

    #[test]
    fn queue_is_fifo_with_no_overtaking() {
        let mut p = pool(4, 0);
        p.admit(spec("a", 4, 0)).unwrap();
        let big = p.admit(spec("big", 3, 0)).unwrap(); // queued first
        let small = p.admit(spec("small", 1, 0)).unwrap(); // would fit sooner, must wait
        assert!(matches!(big, Admission::Queued { position: 0, .. }));
        assert!(matches!(small, Admission::Queued { position: 1, .. }));
        // freeing everything admits both, in FIFO order
        let audit = p.release(TenantId(0), |_| true);
        assert_eq!(
            audit.drained.iter().map(|(t, _)| *t).collect::<Vec<_>>(),
            vec![TenantId(1), TenantId(2)]
        );
        assert_eq!(audit.drained[0].1, vec![0, 1, 2]);
        assert_eq!(audit.drained[1].1, vec![3]);
    }

    #[test]
    fn release_keeps_dead_nodes_out_of_the_free_pool() {
        let mut p = pool(3, 0);
        p.admit(spec("a", 3, 0)).unwrap();
        let audit = p.release(TenantId(0), |n| n != 1);
        assert!(audit.drained.is_empty());
        assert_eq!(audit.freed, vec![0, 2], "audit names what came back");
        assert_eq!(audit.lost, vec![1], "audit names what the storm ate");
        assert_eq!(p.free_nodes(), 2, "node 1 died and must not be re-issued");
    }

    #[test]
    fn purge_free_reports_what_it_dropped() {
        let mut p = pool(4, 0);
        p.admit(spec("a", 2, 0)).unwrap();
        assert_eq!(p.purge_free(|n| n != 3), vec![3]);
        assert_eq!(p.purge_free(|_| true), Vec::<NodeId>::new());
        assert_eq!(p.free_nodes(), 1);
    }

    #[test]
    fn resize_plans_stage_low_and_vacate_high() {
        let mut p = pool(8, 0);
        p.admit(spec("a", 4, 0)).unwrap(); // nodes 0..4
                                           // grow 4 -> 6 stages the two lowest free nodes, consumes nothing yet
        let grow = p.plan_resize(TenantId(0), 6, 1).unwrap();
        assert_eq!(grow.keep, vec![0, 1, 2, 3]);
        assert_eq!(grow.add, vec![4, 5]);
        assert!(grow.vacate.is_empty());
        assert_eq!(p.free_nodes(), 4, "planning consumes nothing");
        // shrink 4 -> 2 vacates the two highest shard nodes
        let shrink = p.plan_resize(TenantId(0), 2, 1).unwrap();
        assert_eq!(shrink.keep, vec![0, 1]);
        assert!(shrink.add.is_empty());
        assert_eq!(shrink.vacate, vec![2, 3]);
        // typed refusals, nothing consumed
        assert_eq!(
            p.plan_resize(TenantId(0), 9, 1).unwrap_err(),
            ReshapeError::NeverFits {
                demanded: 9,
                total: 8
            }
        );
        assert_eq!(
            p.plan_resize(TenantId(0), 4, (1 << 30) + 1).unwrap_err(),
            ReshapeError::Oversubscribed {
                demanded: (1 << 30) + 1,
                capacity: 1 << 30
            }
        );
        assert_eq!(
            p.plan_resize(TenantId(9), 2, 1).unwrap_err(),
            ReshapeError::UnknownTenant(TenantId(9))
        );
        assert_eq!(p.free_nodes(), 4);
    }

    #[test]
    fn grow_beyond_free_pool_is_would_starve() {
        let mut p = pool(6, 0);
        p.admit(spec("a", 3, 0)).unwrap();
        p.admit(spec("b", 2, 0)).unwrap();
        assert_eq!(
            p.plan_resize(TenantId(0), 5, 1).unwrap_err(),
            ReshapeError::WouldStarve {
                tenant: TenantId(0),
                requested: 2,
                free: 1,
            }
        );
    }

    #[test]
    fn commit_resize_moves_nodes_and_drains_the_queue() {
        let mut p = pool(5, 0);
        p.admit(spec("a", 5, 0)).unwrap(); // 0..5
        assert!(matches!(
            p.admit(spec("w", 2, 0)).unwrap(),
            Admission::Queued { .. }
        ));
        // shrink 5 -> 3 frees nodes 3,4 — enough to admit the waiter
        let plan = p.plan_resize(TenantId(0), 3, 1).unwrap();
        let audit = p.commit_resize(TenantId(0), &plan, 1, |_| true);
        assert_eq!(audit.freed, vec![3, 4]);
        assert_eq!(audit.drained.len(), 1);
        assert_eq!(audit.drained[0].0, TenantId(1));
        assert_eq!(audit.drained[0].1, vec![3, 4]);
        assert_eq!(p.nodes_of(TenantId(0)).unwrap(), &[0, 1, 2]);
        assert_eq!(p.spec_of(TenantId(0)).unwrap().nodes, 3);
        // a vacated node that died is lost, not re-issued
        let plan = p.plan_resize(TenantId(0), 2, 1).unwrap();
        let audit = p.commit_resize(TenantId(0), &plan, 1, |n| n != 2);
        assert!(audit.freed.is_empty());
        assert_eq!(audit.lost, vec![2]);
        assert_eq!(p.free_nodes(), 0);
    }

    #[test]
    fn relocate_packs_the_shard_toward_low_ids() {
        let mut p = pool(8, 0);
        p.admit(spec("a", 2, 0)).unwrap(); // 0,1
        p.admit(spec("b", 3, 0)).unwrap(); // 2,3,4
                                           // release a: b now sits above a free hole at 0,1
        p.release(TenantId(0), |_| true);
        let plan = p.plan_relocate(TenantId(1)).unwrap();
        assert_eq!(plan.keep, vec![2]);
        assert_eq!(plan.add, vec![0, 1]);
        assert_eq!(plan.vacate, vec![3, 4]);
        p.commit_resize(TenantId(1), &plan, 1, |_| true);
        assert_eq!(p.nodes_of(TenantId(1)).unwrap(), &[0, 1, 2]);
        // already packed: no further move
        assert_eq!(p.plan_relocate(TenantId(1)), None);
    }

    #[test]
    fn event_queue_next_at_peeks_without_popping() {
        let mut q = EventQueue::new();
        assert_eq!(q.next_at(), None);
        q.push(Duration::from_secs(5), "late");
        q.push(Duration::from_secs(1), "early");
        assert_eq!(q.next_at(), Some(Duration::from_secs(1)));
        assert_eq!(q.len(), 2, "peeking pops nothing");
    }

    #[test]
    fn spare_draws_burn_own_reserve_before_float() {
        let mut p = pool(4, 4);
        p.admit(spec("a", 2, 2)).unwrap();
        p.admit(spec("b", 2, 1)).unwrap();
        assert_eq!(p.float(), 1);
        let g = p.draw_spares(TenantId(0), 3).unwrap();
        assert_eq!(
            g,
            SpareGrant {
                from_reserve: 2,
                from_float: 1
            }
        );
        assert_eq!(p.reserve_of(TenantId(0)), 0);
        assert_eq!(p.float(), 0);
        // b's guarantee is untouched and still drawable
        assert_eq!(
            p.draw_spares(TenantId(1), 1).unwrap(),
            SpareGrant {
                from_reserve: 1,
                from_float: 0
            }
        );
    }

    #[test]
    fn oversubscribing_cascade_gets_the_typed_starvation_refusal() {
        // Two tenants, two spares, both guaranteed one each: a cascade
        // needing two spares would eat the other tenant's guarantee and
        // must be refused with the arbitration verdict, naming exactly
        // what the refusal protects.
        let mut p = pool(4, 2);
        p.admit(spec("a", 2, 1)).unwrap();
        p.admit(spec("b", 2, 1)).unwrap();
        assert_eq!(
            p.draw_spares(TenantId(0), 2).unwrap_err(),
            ArbitrationError::WouldStarve {
                tenant: TenantId(0),
                requested: 2,
                own_reserve: 1,
                float: 0,
                reserved_elsewhere: 1,
            }
        );
        // the refusal must not have consumed anything
        assert_eq!(p.reserve_of(TenantId(0)), 1);
        assert_eq!(p.reserve_of(TenantId(1)), 1);
        // each tenant's single-loss cascade still succeeds
        assert!(p.draw_spares(TenantId(0), 1).is_ok());
        assert!(p.draw_spares(TenantId(1), 1).is_ok());
    }

    #[test]
    fn exhaustion_ordering_first_cascade_wins_the_float() {
        // No guarantees: the float is first-come-first-served, and the
        // pool reports plain exhaustion (not starvation) once dry.
        let mut p = pool(4, 2);
        p.admit(spec("a", 2, 0)).unwrap();
        p.admit(spec("b", 2, 0)).unwrap();
        assert!(p.draw_spares(TenantId(0), 2).is_ok());
        assert_eq!(
            p.draw_spares(TenantId(1), 1).unwrap_err(),
            ArbitrationError::Exhausted {
                tenant: TenantId(1),
                requested: 1,
                available: 0,
            }
        );
    }

    #[test]
    fn released_reserve_returns_to_the_float() {
        let mut p = pool(4, 2);
        p.admit(spec("a", 2, 2)).unwrap();
        p.admit(spec("b", 2, 0)).unwrap();
        assert_eq!(p.float(), 0);
        assert!(matches!(
            p.draw_spares(TenantId(1), 1).unwrap_err(),
            ArbitrationError::WouldStarve { .. }
        ));
        p.release(TenantId(0), |_| true);
        assert_eq!(p.float(), 2);
        assert!(p.draw_spares(TenantId(1), 1).is_ok());
    }

    #[test]
    fn unknown_tenant_draw_is_typed() {
        let mut p = pool(2, 1);
        assert_eq!(
            p.draw_spares(TenantId(9), 1).unwrap_err(),
            ArbitrationError::UnknownTenant(TenantId(9))
        );
    }

    #[test]
    fn reassign_tracks_replacement_nodes() {
        let mut p = pool(2, 1);
        p.admit(spec("a", 2, 1)).unwrap();
        p.draw_spares(TenantId(0), 1).unwrap();
        p.reassign(TenantId(0), vec![0, 2]);
        assert_eq!(p.nodes_of(TenantId(0)).unwrap(), &[0, 2]);
        assert_eq!(p.owner_of(2), Some(TenantId(0)));
        assert_eq!(p.owner_of(1), None);
    }

    #[test]
    fn event_queue_pops_by_time_then_sequence() {
        let mut q = EventQueue::new();
        q.push(Duration::from_secs(5), "late");
        q.push(Duration::from_secs(1), "tie-first");
        q.push(Duration::from_secs(1), "tie-second");
        q.push(Duration::ZERO, "early");
        assert_eq!(q.len(), 4);
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, k)| k)).collect();
        assert_eq!(order, vec!["early", "tie-first", "tie-second", "late"]);
        assert!(q.is_empty());
    }
}
