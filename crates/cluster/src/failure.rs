//! Deterministic fault injection.
//!
//! The paper validates SKT-HPL by powering off nodes during the run (§6.2,
//! §6.3) and analyses recoverability by *when* the failure lands relative
//! to the protocol (Figures 2–5: during computing, during checksum
//! calculation, during checkpoint flush). Random power-offs can only sample
//! those windows; the injector here fires a chosen fault the *n-th time a
//! node passes a named probe point*, so every window is exercised exactly
//! and reproducibly.
//!
//! Three fault species share the probe-count trigger ([`FaultPlan`]):
//!
//! * **Kill** ([`FailurePlan`]) — power the node off: memory wiped, job
//!   aborted. Probe points exist on the forward protocol *and* on the
//!   recovery path, so cascading failures (a second node dying mid-rebuild)
//!   are as targetable as first failures.
//! * **Corrupt** ([`CorruptPlan`]) — flip one bit in one SHM checkpoint
//!   [`Region`] of the node, silently: nothing aborts, nothing is wiped.
//!   This models the DRAM bit flips that diskless in-memory checkpoints
//!   are exposed to for the whole job lifetime; the CRC/scrub layer in
//!   `skt-core` is what's expected to catch it.
//! * **Gray** ([`GrayPlan`]) — degrade the node without killing it: a
//!   straggler ([`GrayKind::Slow`]), a hard hang ([`GrayKind::Hang`]), or
//!   a degraded link ([`GrayKind::LinkDegrade`]). Nothing aborts and no
//!   memory is lost; the suspicion layer (`crate::suspicion`) is what's
//!   expected to notice. Gray faults optionally heal after a virtual
//!   duration, which is what makes *false* suspicion testable.

use crate::cluster::NodeId;
use parking_lot::Mutex;
use std::time::Duration;

/// Error type threaded through the whole stack when the job dies.
#[non_exhaustive]
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// The job was aborted (MPI semantics: any node failure kills every
    /// rank of the job).
    JobAborted,
    /// This specific node just died (returned to the rank that was killed).
    NodeDead(NodeId),
    /// A protocol invariant was violated (wrong payload type, missing
    /// collective contribution, mistyped SHM segment). Carries a static
    /// description; the job-abort path treats it like any other fault
    /// instead of panicking the rank thread.
    Protocol(&'static str),
    /// The suspicion layer declared `node` suspect: it stopped making
    /// progress (or progressed far too slowly) but is not provably dead.
    /// `score` is the whole-φ suspicion score at declaration time; the
    /// service's suspicion ladder decides between exoneration and
    /// proactive migration. Returned by collectives instead of parking
    /// forever on a gray peer.
    Suspect {
        /// The suspect node.
        node: NodeId,
        /// Suspicion score (whole φ units) when the verdict was declared.
        score: u32,
    },
    /// The rank's node was fenced (its generation number advanced) while
    /// the job held an older generation: the node is an exonerated-too-
    /// late zombie whose messages and SHM writes must never be merged.
    Fenced {
        /// The fenced node.
        node: NodeId,
        /// The node's current (post-fence) generation.
        generation: u64,
    },
}

impl Fault {
    /// Canonical label with every timing-dependent detail stripped: the
    /// [`Fault::Suspect`] score depends on *when* a peer sampled the
    /// monitor, which varies with the scheduler seed even when the
    /// verdict (which node, and why) does not. Fingerprints that must be
    /// seed-invariant print this instead of the `Debug` form.
    pub fn stable_label(&self) -> String {
        match self {
            Fault::JobAborted => "job-aborted".into(),
            Fault::NodeDead(n) => format!("node-dead({n})"),
            Fault::Protocol(msg) => format!("protocol({msg})"),
            Fault::Suspect { node, .. } => format!("suspect({node})"),
            Fault::Fenced { node, .. } => format!("fenced({node})"),
        }
    }
}

impl std::fmt::Display for Fault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Fault::JobAborted => write!(f, "job aborted after a node failure"),
            Fault::NodeDead(n) => write!(f, "node {n} failed (powered off)"),
            Fault::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            Fault::Suspect { node, score } => {
                write!(f, "node {node} suspected gray-failed (score {score})")
            }
            Fault::Fenced { node, generation } => {
                write!(f, "node {node} fenced at generation {generation}")
            }
        }
    }
}

impl std::error::Error for Fault {}

/// One-shot plan: kill `node` the `nth` time (1-based) any of its ranks
/// passes the probe labeled `label`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FailurePlan {
    /// Probe label, e.g. `"elimination-iter"`, `"encode"`, `"flush"`.
    pub label: String,
    /// 1-based occurrence count at which to fire.
    pub nth: u64,
    /// Victim node.
    pub node: NodeId,
}

impl FailurePlan {
    /// Convenience constructor.
    pub fn new(label: impl Into<String>, nth: u64, node: NodeId) -> Self {
        let nth = nth.max(1);
        FailurePlan {
            label: label.into(),
            nth,
            node,
        }
    }
}

/// A per-rank SHM checkpoint region a [`CorruptPlan`] can target. The
/// variants mirror the protocol's segment naming (`{job}/r{rank}/{part}`);
/// the injector resolves a region to the matching segment on the victim
/// node without the cluster layer knowing anything else about the
/// protocol.
#[non_exhaustive]
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Region {
    /// The live workspace `A1‖B2` (the in-place checkpoint).
    Work,
    /// The checkpoint copy `B`.
    CopyB,
    /// The checksum copy `C` (parity of `B`).
    ParityC,
    /// The fresh checksum `D` (parity of the workspace).
    ChecksumD,
    /// The second checkpoint copy `B1` (double-checkpoint baseline).
    CopyB1,
    /// The second checksum copy `C1` (double-checkpoint baseline).
    ParityC1,
    /// The commit header (epoch words + header CRC).
    Header,
}

impl Region {
    /// Every region, for sweeps.
    pub const ALL: [Region; 7] = [
        Region::Work,
        Region::CopyB,
        Region::ParityC,
        Region::ChecksumD,
        Region::CopyB1,
        Region::ParityC1,
        Region::Header,
    ];

    /// The segment-name suffix this region corresponds to (the `{part}`
    /// of `{job}/r{rank}/{part}`).
    #[must_use]
    pub fn suffix(self) -> &'static str {
        match self {
            Region::Work => "work",
            Region::CopyB => "b",
            Region::ParityC => "c",
            Region::ChecksumD => "d",
            Region::CopyB1 => "b1",
            Region::ParityC1 => "c1",
            Region::Header => "header",
        }
    }
}

impl std::fmt::Display for Region {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.suffix())
    }
}

/// One-shot plan: the `nth` time (1-based) `node` passes the probe
/// labeled `label`, flip bit `bit` of the byte at `offset` within the
/// node's `region` segment — silently. Out-of-range offsets wrap modulo
/// the region size, so sweeping arbitrary `(offset, bit)` pairs is always
/// a valid single-bit corruption somewhere in the region.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CorruptPlan {
    /// Probe label at which the flip lands.
    pub label: String,
    /// 1-based occurrence count at which to fire.
    pub nth: u64,
    /// Node whose SHM is corrupted (also the node whose probe triggers).
    pub node: NodeId,
    /// Which checkpoint region to damage.
    pub region: Region,
    /// Byte offset within the region (wrapped modulo its size).
    pub offset: usize,
    /// Bit within the byte (wrapped modulo 8).
    pub bit: u8,
}

impl CorruptPlan {
    /// Convenience constructor.
    pub fn new(
        label: impl Into<String>,
        nth: u64,
        node: NodeId,
        region: Region,
        offset: usize,
        bit: u8,
    ) -> Self {
        CorruptPlan {
            label: label.into(),
            nth: nth.max(1),
            node,
            region,
            offset,
            bit,
        }
    }
}

/// The species of a gray (degraded-but-not-dead) fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GrayKind {
    /// Straggler: every probe the node passes charges `factor` heartbeat
    /// intervals of extra virtual time — the node still progresses and
    /// still heartbeats, just `factor`× slower. Its steady-state
    /// suspicion score converges to `factor`, so factors at or below the
    /// suspicion threshold are *tolerated* (the job merely slows down)
    /// while factors above it are declared suspect.
    Slow {
        /// Slowdown multiple (also the steady-state suspicion score).
        factor: u32,
    },
    /// Hard hang: the node's ranks stop at their next yield point and
    /// its heartbeats freeze, so its suspicion score grows without bound
    /// until a peer declares it suspect (or the plan heals).
    Hang,
    /// Link degradation: every modeled send from the node costs
    /// `factor`× the α-β time. The *excess* over the healthy cost feeds
    /// the node's suspicion score, so small factors (or tiny messages)
    /// are tolerated and heavy degradation during bulk phases (encode,
    /// flush) is declared suspect.
    LinkDegrade {
        /// Multiple on the node's modeled send cost.
        factor: u32,
    },
}

impl GrayKind {
    /// Short label for events and reports.
    pub fn label(self) -> &'static str {
        match self {
            GrayKind::Slow { .. } => "slow",
            GrayKind::Hang => "hang",
            GrayKind::LinkDegrade { .. } => "link-degrade",
        }
    }
}

impl std::fmt::Display for GrayKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One-shot plan: the `nth` time (1-based) `node` passes the probe
/// labeled `label`, the node turns gray — degraded per `kind` but alive,
/// with its memory intact. When `heal_after` is set the node recovers by
/// itself that much virtual time later (the straggler-that-recovers
/// scenario false suspicions come from); `None` means it stays gray until
/// the service fences and migrates around it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GrayPlan {
    /// Probe label at which the degradation starts.
    pub label: String,
    /// 1-based occurrence count at which to fire.
    pub nth: u64,
    /// The node that turns gray.
    pub node: NodeId,
    /// What kind of gray failure.
    pub kind: GrayKind,
    /// Virtual duration after which the node spontaneously recovers;
    /// `None` = never.
    pub heal_after: Option<Duration>,
}

impl GrayPlan {
    /// A gray plan that never heals by itself.
    pub fn new(label: impl Into<String>, nth: u64, node: NodeId, kind: GrayKind) -> Self {
        GrayPlan {
            label: label.into(),
            nth: nth.max(1),
            node,
            kind,
            heal_after: None,
        }
    }

    /// Straggler plan: `factor`× slowdown.
    pub fn slow(label: impl Into<String>, nth: u64, node: NodeId, factor: u32) -> Self {
        Self::new(
            label,
            nth,
            node,
            GrayKind::Slow {
                factor: factor.max(1),
            },
        )
    }

    /// Hard-hang plan.
    pub fn hang(label: impl Into<String>, nth: u64, node: NodeId) -> Self {
        Self::new(label, nth, node, GrayKind::Hang)
    }

    /// Link-degradation plan: `factor`× send cost.
    pub fn link_degrade(label: impl Into<String>, nth: u64, node: NodeId, factor: u32) -> Self {
        Self::new(
            label,
            nth,
            node,
            GrayKind::LinkDegrade {
                factor: factor.max(1),
            },
        )
    }

    /// Builder: the node recovers by itself `d` of virtual time after
    /// the fault fires.
    #[must_use]
    pub fn heal_after(mut self, d: Duration) -> Self {
        self.heal_after = Some(d);
        self
    }
}

/// A generalized one-shot fault: kill the node, silently flip a bit in
/// one of its checkpoint regions, or degrade it gray. All fire on the
/// same deterministic probe-count trigger.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultPlan {
    /// Power the node off at the trigger.
    Kill(FailurePlan),
    /// Flip one bit in one SHM region at the trigger.
    Corrupt(CorruptPlan),
    /// Degrade the node (straggler / hang / bad link) at the trigger.
    Gray(GrayPlan),
}

impl FaultPlan {
    fn label(&self) -> &str {
        match self {
            FaultPlan::Kill(p) => &p.label,
            FaultPlan::Corrupt(p) => &p.label,
            FaultPlan::Gray(p) => &p.label,
        }
    }

    fn nth(&self) -> u64 {
        match self {
            FaultPlan::Kill(p) => p.nth,
            FaultPlan::Corrupt(p) => p.nth,
            FaultPlan::Gray(p) => p.nth,
        }
    }

    fn node(&self) -> NodeId {
        match self {
            FaultPlan::Kill(p) => p.node,
            FaultPlan::Corrupt(p) => p.node,
            FaultPlan::Gray(p) => p.node,
        }
    }

    /// Whether this plan is a gray degradation (needs the suspicion
    /// machinery armed).
    pub fn is_gray(&self) -> bool {
        matches!(self, FaultPlan::Gray(_))
    }
}

impl From<FailurePlan> for FaultPlan {
    fn from(p: FailurePlan) -> Self {
        FaultPlan::Kill(p)
    }
}

impl From<CorruptPlan> for FaultPlan {
    fn from(p: CorruptPlan) -> Self {
        FaultPlan::Corrupt(p)
    }
}

impl From<GrayPlan> for FaultPlan {
    fn from(p: GrayPlan) -> Self {
        FaultPlan::Gray(p)
    }
}

/// What a fired plan asks [`crate::Cluster::failpoint`] to do.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Kill the probing node.
    Kill,
    /// Apply this bit flip and let the rank continue untroubled.
    Corrupt(CorruptPlan),
    /// Turn the probing node gray (it keeps running — degraded).
    Gray(GrayPlan),
}

/// Holds armed plans; consulted by [`crate::Cluster::failpoint`].
#[derive(Default)]
pub struct FailureInjector {
    plans: Mutex<Vec<FaultPlan>>,
}

impl FailureInjector {
    /// No plans armed.
    pub fn new() -> Self {
        Self::default()
    }

    /// Arm a kill plan. Multiple plans may be armed at once (e.g. to kill
    /// two nodes in different groups).
    pub fn arm(&self, plan: FailurePlan) {
        self.arm_fault(plan.into());
    }

    /// Arm any fault plan (kill or corrupt).
    pub fn arm_fault(&self, plan: FaultPlan) {
        self.plans.lock().push(plan);
    }

    /// Drop all plans.
    pub fn clear(&self) {
        self.plans.lock().clear();
    }

    /// Number of armed plans.
    pub fn armed(&self) -> usize {
        self.plans.lock().len()
    }

    /// Check whether a probe hit fires a plan, and which action it asks
    /// for. `count` is the caller's 1-based per-rank occurrence count for
    /// `label`; per-rank counting keeps multi-threaded runs deterministic.
    /// The fired plan is removed.
    pub fn fires(&self, node: NodeId, label: &str, count: u64) -> Option<FaultAction> {
        let mut plans = self.plans.lock();
        let pos = plans
            .iter()
            .position(|p| p.node() == node && p.label() == label && p.nth() == count)?;
        match plans.remove(pos) {
            FaultPlan::Kill(_) => Some(FaultAction::Kill),
            FaultPlan::Corrupt(p) => Some(FaultAction::Corrupt(p)),
            FaultPlan::Gray(p) => Some(FaultAction::Gray(p)),
        }
    }

    /// Whether any armed plan is gray (used to arm the suspicion layer
    /// when plans are armed directly on the injector).
    pub fn any_gray(&self) -> bool {
        self.plans.lock().iter().any(FaultPlan::is_gray)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_fires_exactly_once_at_nth_hit() {
        let inj = FailureInjector::new();
        inj.arm(FailurePlan::new("encode", 3, 5));
        assert_eq!(inj.fires(5, "encode", 1), None);
        assert_eq!(inj.fires(5, "encode", 2), None);
        assert_eq!(inj.fires(5, "encode", 3), Some(FaultAction::Kill));
        assert_eq!(inj.fires(5, "encode", 3), None, "one-shot");
        assert_eq!(inj.armed(), 0);
    }

    #[test]
    fn plan_only_matches_its_node_and_label() {
        let inj = FailureInjector::new();
        inj.arm(FailurePlan::new("flush", 1, 2));
        assert_eq!(inj.fires(3, "flush", 1), None);
        assert_eq!(inj.fires(2, "encode", 1), None);
        assert_eq!(inj.fires(2, "flush", 1), Some(FaultAction::Kill));
    }

    #[test]
    fn nth_zero_clamps_to_one() {
        let p = FailurePlan::new("x", 0, 0);
        assert_eq!(p.nth, 1);
        let c = CorruptPlan::new("x", 0, 0, Region::CopyB, 0, 0);
        assert_eq!(c.nth, 1);
    }

    #[test]
    fn clear_disarms() {
        let inj = FailureInjector::new();
        inj.arm(FailurePlan::new("x", 1, 0));
        inj.clear();
        assert_eq!(inj.fires(0, "x", 1), None);
    }

    #[test]
    fn corrupt_plan_fires_with_its_payload() {
        let inj = FailureInjector::new();
        let plan = CorruptPlan::new("computing", 2, 1, Region::ParityC, 17, 3);
        inj.arm_fault(plan.clone().into());
        assert_eq!(inj.fires(1, "computing", 1), None);
        assert_eq!(
            inj.fires(1, "computing", 2),
            Some(FaultAction::Corrupt(plan))
        );
        assert_eq!(inj.armed(), 0);
    }

    #[test]
    fn kill_and_corrupt_plans_coexist() {
        let inj = FailureInjector::new();
        inj.arm_fault(FailurePlan::new("p", 1, 0).into());
        inj.arm_fault(CorruptPlan::new("p", 1, 1, Region::Header, 0, 0).into());
        assert_eq!(inj.armed(), 2);
        assert_eq!(inj.fires(0, "p", 1), Some(FaultAction::Kill));
        assert!(matches!(
            inj.fires(1, "p", 1),
            Some(FaultAction::Corrupt(_))
        ));
    }

    #[test]
    fn gray_plan_fires_with_its_payload() {
        let inj = FailureInjector::new();
        let plan = GrayPlan::hang("computing", 2, 3).heal_after(Duration::from_millis(1));
        inj.arm_fault(plan.clone().into());
        assert!(inj.any_gray());
        assert_eq!(inj.fires(3, "computing", 1), None);
        assert_eq!(inj.fires(3, "computing", 2), Some(FaultAction::Gray(plan)));
        assert!(!inj.any_gray());
    }

    #[test]
    fn gray_constructors_clamp_factors_and_nth() {
        let s = GrayPlan::slow("p", 0, 1, 0);
        assert_eq!(s.nth, 1);
        assert_eq!(s.kind, GrayKind::Slow { factor: 1 });
        let l = GrayPlan::link_degrade("p", 1, 1, 0);
        assert_eq!(l.kind, GrayKind::LinkDegrade { factor: 1 });
        assert_eq!(GrayKind::Hang.label(), "hang");
    }

    #[test]
    fn stable_label_strips_the_suspicion_score() {
        let a = Fault::Suspect { node: 4, score: 9 };
        let b = Fault::Suspect { node: 4, score: 31 };
        assert_eq!(a.stable_label(), b.stable_label());
        assert_eq!(a.stable_label(), "suspect(4)");
        assert_eq!(Fault::NodeDead(2).stable_label(), "node-dead(2)");
        assert_eq!(
            Fault::Fenced {
                node: 1,
                generation: 2
            }
            .stable_label(),
            "fenced(1)"
        );
    }

    #[test]
    fn region_suffixes_are_distinct() {
        let mut seen = std::collections::BTreeSet::new();
        for r in Region::ALL {
            assert!(seen.insert(r.suffix()), "duplicate suffix {r}");
        }
    }
}
