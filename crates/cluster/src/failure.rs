//! Deterministic fault injection.
//!
//! The paper validates SKT-HPL by powering off nodes during the run (§6.2,
//! §6.3) and analyses recoverability by *when* the failure lands relative
//! to the protocol (Figures 2–5: during computing, during checksum
//! calculation, during checkpoint flush). Random power-offs can only sample
//! those windows; the injector here fires a chosen fault the *n-th time a
//! node passes a named probe point*, so every window is exercised exactly
//! and reproducibly.
//!
//! Two fault species share the probe-count trigger ([`FaultPlan`]):
//!
//! * **Kill** ([`FailurePlan`]) — power the node off: memory wiped, job
//!   aborted. Probe points exist on the forward protocol *and* on the
//!   recovery path, so cascading failures (a second node dying mid-rebuild)
//!   are as targetable as first failures.
//! * **Corrupt** ([`CorruptPlan`]) — flip one bit in one SHM checkpoint
//!   [`Region`] of the node, silently: nothing aborts, nothing is wiped.
//!   This models the DRAM bit flips that diskless in-memory checkpoints
//!   are exposed to for the whole job lifetime; the CRC/scrub layer in
//!   `skt-core` is what's expected to catch it.

use crate::cluster::NodeId;
use parking_lot::Mutex;

/// Error type threaded through the whole stack when the job dies.
#[non_exhaustive]
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// The job was aborted (MPI semantics: any node failure kills every
    /// rank of the job).
    JobAborted,
    /// This specific node just died (returned to the rank that was killed).
    NodeDead(NodeId),
    /// A protocol invariant was violated (wrong payload type, missing
    /// collective contribution, mistyped SHM segment). Carries a static
    /// description; the job-abort path treats it like any other fault
    /// instead of panicking the rank thread.
    Protocol(&'static str),
}

impl std::fmt::Display for Fault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Fault::JobAborted => write!(f, "job aborted after a node failure"),
            Fault::NodeDead(n) => write!(f, "node {n} failed (powered off)"),
            Fault::Protocol(msg) => write!(f, "protocol violation: {msg}"),
        }
    }
}

impl std::error::Error for Fault {}

/// One-shot plan: kill `node` the `nth` time (1-based) any of its ranks
/// passes the probe labeled `label`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FailurePlan {
    /// Probe label, e.g. `"elimination-iter"`, `"encode"`, `"flush"`.
    pub label: String,
    /// 1-based occurrence count at which to fire.
    pub nth: u64,
    /// Victim node.
    pub node: NodeId,
}

impl FailurePlan {
    /// Convenience constructor.
    pub fn new(label: impl Into<String>, nth: u64, node: NodeId) -> Self {
        let nth = nth.max(1);
        FailurePlan {
            label: label.into(),
            nth,
            node,
        }
    }
}

/// A per-rank SHM checkpoint region a [`CorruptPlan`] can target. The
/// variants mirror the protocol's segment naming (`{job}/r{rank}/{part}`);
/// the injector resolves a region to the matching segment on the victim
/// node without the cluster layer knowing anything else about the
/// protocol.
#[non_exhaustive]
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Region {
    /// The live workspace `A1‖B2` (the in-place checkpoint).
    Work,
    /// The checkpoint copy `B`.
    CopyB,
    /// The checksum copy `C` (parity of `B`).
    ParityC,
    /// The fresh checksum `D` (parity of the workspace).
    ChecksumD,
    /// The second checkpoint copy `B1` (double-checkpoint baseline).
    CopyB1,
    /// The second checksum copy `C1` (double-checkpoint baseline).
    ParityC1,
    /// The commit header (epoch words + header CRC).
    Header,
}

impl Region {
    /// Every region, for sweeps.
    pub const ALL: [Region; 7] = [
        Region::Work,
        Region::CopyB,
        Region::ParityC,
        Region::ChecksumD,
        Region::CopyB1,
        Region::ParityC1,
        Region::Header,
    ];

    /// The segment-name suffix this region corresponds to (the `{part}`
    /// of `{job}/r{rank}/{part}`).
    #[must_use]
    pub fn suffix(self) -> &'static str {
        match self {
            Region::Work => "work",
            Region::CopyB => "b",
            Region::ParityC => "c",
            Region::ChecksumD => "d",
            Region::CopyB1 => "b1",
            Region::ParityC1 => "c1",
            Region::Header => "header",
        }
    }
}

impl std::fmt::Display for Region {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.suffix())
    }
}

/// One-shot plan: the `nth` time (1-based) `node` passes the probe
/// labeled `label`, flip bit `bit` of the byte at `offset` within the
/// node's `region` segment — silently. Out-of-range offsets wrap modulo
/// the region size, so sweeping arbitrary `(offset, bit)` pairs is always
/// a valid single-bit corruption somewhere in the region.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CorruptPlan {
    /// Probe label at which the flip lands.
    pub label: String,
    /// 1-based occurrence count at which to fire.
    pub nth: u64,
    /// Node whose SHM is corrupted (also the node whose probe triggers).
    pub node: NodeId,
    /// Which checkpoint region to damage.
    pub region: Region,
    /// Byte offset within the region (wrapped modulo its size).
    pub offset: usize,
    /// Bit within the byte (wrapped modulo 8).
    pub bit: u8,
}

impl CorruptPlan {
    /// Convenience constructor.
    pub fn new(
        label: impl Into<String>,
        nth: u64,
        node: NodeId,
        region: Region,
        offset: usize,
        bit: u8,
    ) -> Self {
        CorruptPlan {
            label: label.into(),
            nth: nth.max(1),
            node,
            region,
            offset,
            bit,
        }
    }
}

/// A generalized one-shot fault: kill the node, or silently flip a bit in
/// one of its checkpoint regions. Both fire on the same deterministic
/// probe-count trigger.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultPlan {
    /// Power the node off at the trigger.
    Kill(FailurePlan),
    /// Flip one bit in one SHM region at the trigger.
    Corrupt(CorruptPlan),
}

impl FaultPlan {
    fn label(&self) -> &str {
        match self {
            FaultPlan::Kill(p) => &p.label,
            FaultPlan::Corrupt(p) => &p.label,
        }
    }

    fn nth(&self) -> u64 {
        match self {
            FaultPlan::Kill(p) => p.nth,
            FaultPlan::Corrupt(p) => p.nth,
        }
    }

    fn node(&self) -> NodeId {
        match self {
            FaultPlan::Kill(p) => p.node,
            FaultPlan::Corrupt(p) => p.node,
        }
    }
}

impl From<FailurePlan> for FaultPlan {
    fn from(p: FailurePlan) -> Self {
        FaultPlan::Kill(p)
    }
}

impl From<CorruptPlan> for FaultPlan {
    fn from(p: CorruptPlan) -> Self {
        FaultPlan::Corrupt(p)
    }
}

/// What a fired plan asks [`crate::Cluster::failpoint`] to do.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Kill the probing node.
    Kill,
    /// Apply this bit flip and let the rank continue untroubled.
    Corrupt(CorruptPlan),
}

/// Holds armed plans; consulted by [`crate::Cluster::failpoint`].
#[derive(Default)]
pub struct FailureInjector {
    plans: Mutex<Vec<FaultPlan>>,
}

impl FailureInjector {
    /// No plans armed.
    pub fn new() -> Self {
        Self::default()
    }

    /// Arm a kill plan. Multiple plans may be armed at once (e.g. to kill
    /// two nodes in different groups).
    pub fn arm(&self, plan: FailurePlan) {
        self.arm_fault(plan.into());
    }

    /// Arm any fault plan (kill or corrupt).
    pub fn arm_fault(&self, plan: FaultPlan) {
        self.plans.lock().push(plan);
    }

    /// Drop all plans.
    pub fn clear(&self) {
        self.plans.lock().clear();
    }

    /// Number of armed plans.
    pub fn armed(&self) -> usize {
        self.plans.lock().len()
    }

    /// Check whether a probe hit fires a plan, and which action it asks
    /// for. `count` is the caller's 1-based per-rank occurrence count for
    /// `label`; per-rank counting keeps multi-threaded runs deterministic.
    /// The fired plan is removed.
    pub fn fires(&self, node: NodeId, label: &str, count: u64) -> Option<FaultAction> {
        let mut plans = self.plans.lock();
        let pos = plans
            .iter()
            .position(|p| p.node() == node && p.label() == label && p.nth() == count)?;
        match plans.remove(pos) {
            FaultPlan::Kill(_) => Some(FaultAction::Kill),
            FaultPlan::Corrupt(p) => Some(FaultAction::Corrupt(p)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_fires_exactly_once_at_nth_hit() {
        let inj = FailureInjector::new();
        inj.arm(FailurePlan::new("encode", 3, 5));
        assert_eq!(inj.fires(5, "encode", 1), None);
        assert_eq!(inj.fires(5, "encode", 2), None);
        assert_eq!(inj.fires(5, "encode", 3), Some(FaultAction::Kill));
        assert_eq!(inj.fires(5, "encode", 3), None, "one-shot");
        assert_eq!(inj.armed(), 0);
    }

    #[test]
    fn plan_only_matches_its_node_and_label() {
        let inj = FailureInjector::new();
        inj.arm(FailurePlan::new("flush", 1, 2));
        assert_eq!(inj.fires(3, "flush", 1), None);
        assert_eq!(inj.fires(2, "encode", 1), None);
        assert_eq!(inj.fires(2, "flush", 1), Some(FaultAction::Kill));
    }

    #[test]
    fn nth_zero_clamps_to_one() {
        let p = FailurePlan::new("x", 0, 0);
        assert_eq!(p.nth, 1);
        let c = CorruptPlan::new("x", 0, 0, Region::CopyB, 0, 0);
        assert_eq!(c.nth, 1);
    }

    #[test]
    fn clear_disarms() {
        let inj = FailureInjector::new();
        inj.arm(FailurePlan::new("x", 1, 0));
        inj.clear();
        assert_eq!(inj.fires(0, "x", 1), None);
    }

    #[test]
    fn corrupt_plan_fires_with_its_payload() {
        let inj = FailureInjector::new();
        let plan = CorruptPlan::new("computing", 2, 1, Region::ParityC, 17, 3);
        inj.arm_fault(plan.clone().into());
        assert_eq!(inj.fires(1, "computing", 1), None);
        assert_eq!(
            inj.fires(1, "computing", 2),
            Some(FaultAction::Corrupt(plan))
        );
        assert_eq!(inj.armed(), 0);
    }

    #[test]
    fn kill_and_corrupt_plans_coexist() {
        let inj = FailureInjector::new();
        inj.arm_fault(FailurePlan::new("p", 1, 0).into());
        inj.arm_fault(CorruptPlan::new("p", 1, 1, Region::Header, 0, 0).into());
        assert_eq!(inj.armed(), 2);
        assert_eq!(inj.fires(0, "p", 1), Some(FaultAction::Kill));
        assert!(matches!(
            inj.fires(1, "p", 1),
            Some(FaultAction::Corrupt(_))
        ));
    }

    #[test]
    fn region_suffixes_are_distinct() {
        let mut seen = std::collections::BTreeSet::new();
        for r in Region::ALL {
            assert!(seen.insert(r.suffix()), "duplicate suffix {r}");
        }
    }
}
