//! Deterministic failure injection.
//!
//! The paper validates SKT-HPL by powering off nodes during the run (§6.2,
//! §6.3) and analyses recoverability by *when* the failure lands relative
//! to the protocol (Figures 2–5: during computing, during checksum
//! calculation, during checkpoint flush). Random power-offs can only sample
//! those windows; the injector here kills a chosen node the *n-th time it
//! passes a named probe point*, so every window is exercised exactly and
//! reproducibly.

use crate::cluster::NodeId;
use parking_lot::Mutex;

/// Error type threaded through the whole stack when the job dies.
#[non_exhaustive]
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// The job was aborted (MPI semantics: any node failure kills every
    /// rank of the job).
    JobAborted,
    /// This specific node just died (returned to the rank that was killed).
    NodeDead(NodeId),
    /// A protocol invariant was violated (wrong payload type, missing
    /// collective contribution, mistyped SHM segment). Carries a static
    /// description; the job-abort path treats it like any other fault
    /// instead of panicking the rank thread.
    Protocol(&'static str),
}

impl std::fmt::Display for Fault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Fault::JobAborted => write!(f, "job aborted after a node failure"),
            Fault::NodeDead(n) => write!(f, "node {n} failed (powered off)"),
            Fault::Protocol(msg) => write!(f, "protocol violation: {msg}"),
        }
    }
}

impl std::error::Error for Fault {}

/// One-shot plan: kill `node` the `nth` time (1-based) any of its ranks
/// passes the probe labeled `label`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FailurePlan {
    /// Probe label, e.g. `"elimination-iter"`, `"encode"`, `"flush"`.
    pub label: String,
    /// 1-based occurrence count at which to fire.
    pub nth: u64,
    /// Victim node.
    pub node: NodeId,
}

impl FailurePlan {
    /// Convenience constructor.
    pub fn new(label: impl Into<String>, nth: u64, node: NodeId) -> Self {
        let nth = nth.max(1);
        FailurePlan {
            label: label.into(),
            nth,
            node,
        }
    }
}

/// Holds armed plans; consulted by [`crate::Cluster::failpoint`].
#[derive(Default)]
pub struct FailureInjector {
    plans: Mutex<Vec<FailurePlan>>,
}

impl FailureInjector {
    /// No plans armed.
    pub fn new() -> Self {
        Self::default()
    }

    /// Arm a plan. Multiple plans may be armed at once (e.g. to kill two
    /// nodes in different groups).
    pub fn arm(&self, plan: FailurePlan) {
        self.plans.lock().push(plan);
    }

    /// Drop all plans.
    pub fn clear(&self) {
        self.plans.lock().clear();
    }

    /// Number of armed plans.
    pub fn armed(&self) -> usize {
        self.plans.lock().len()
    }

    /// Check whether a probe hit fires a plan. `count` is the caller's
    /// 1-based per-rank occurrence count for `label`; per-rank counting
    /// keeps multi-threaded runs deterministic. The fired plan is removed.
    pub fn fires(&self, node: NodeId, label: &str, count: u64) -> bool {
        let mut plans = self.plans.lock();
        if let Some(pos) = plans
            .iter()
            .position(|p| p.node == node && p.label == label && p.nth == count)
        {
            plans.remove(pos);
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_fires_exactly_once_at_nth_hit() {
        let inj = FailureInjector::new();
        inj.arm(FailurePlan::new("encode", 3, 5));
        assert!(!inj.fires(5, "encode", 1));
        assert!(!inj.fires(5, "encode", 2));
        assert!(inj.fires(5, "encode", 3));
        assert!(!inj.fires(5, "encode", 3), "one-shot");
        assert_eq!(inj.armed(), 0);
    }

    #[test]
    fn plan_only_matches_its_node_and_label() {
        let inj = FailureInjector::new();
        inj.arm(FailurePlan::new("flush", 1, 2));
        assert!(!inj.fires(3, "flush", 1));
        assert!(!inj.fires(2, "encode", 1));
        assert!(inj.fires(2, "flush", 1));
    }

    #[test]
    fn nth_zero_clamps_to_one() {
        let p = FailurePlan::new("x", 0, 0);
        assert_eq!(p.nth, 1);
    }

    #[test]
    fn clear_disarms() {
        let inj = FailureInjector::new();
        inj.arm(FailurePlan::new("x", 1, 0));
        inj.clear();
        assert!(!inj.fires(0, "x", 1));
    }
}
