//! Node-persistent shared memory.
//!
//! The paper (§2.3) keeps checkpoints in Linux SHM (`shmget`) segments: a
//! segment outlives the process that created it, so after an MPI job aborts
//! the restarted job can re-attach to the checkpoints on every *healthy*
//! node. A powered-off node loses its memory, segments included.
//!
//! [`ShmStore`] models the per-node segment table. Segments are typed
//! ([`SegmentData::F64`] for matrix data, [`SegmentData::Bytes`] for
//! headers / serialized state) so application code works on `f64` slices
//! directly — the workspace *is* the checkpoint, per the self-checkpoint
//! design.

use crate::failure::Fault;
use parking_lot::{Mutex, RwLock};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Contents of one shared-memory segment.
#[derive(Clone, Debug, PartialEq)]
pub enum SegmentData {
    /// Double-precision payload (matrix workspace, checkpoints, checksums).
    F64(Vec<f64>),
    /// Raw bytes (protocol headers, serialized iteration state).
    Bytes(Vec<u8>),
}

impl SegmentData {
    /// Size of the payload in bytes (what `shmget` would have reserved).
    pub fn size_bytes(&self) -> usize {
        match self {
            SegmentData::F64(v) => v.len() * std::mem::size_of::<f64>(),
            SegmentData::Bytes(v) => v.len(),
        }
    }

    /// Borrow as `f64` slice; panics if the segment holds bytes.
    pub fn as_f64(&self) -> &[f64] {
        self.try_as_f64().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Borrow as mutable `f64` slice; panics if the segment holds bytes.
    pub fn as_f64_mut(&mut self) -> &mut Vec<f64> {
        match self {
            SegmentData::F64(v) => v,
            SegmentData::Bytes(_) => panic!("segment holds bytes, not f64"),
        }
    }

    /// Borrow as byte slice; panics if the segment holds f64 data.
    pub fn as_bytes(&self) -> &[u8] {
        self.try_as_bytes().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Borrow as mutable byte vec; panics if the segment holds f64 data.
    pub fn as_bytes_mut(&mut self) -> &mut Vec<u8> {
        match self {
            SegmentData::Bytes(v) => v,
            SegmentData::F64(_) => panic!("segment holds f64, not bytes"),
        }
    }

    /// Borrow as `f64` slice, reporting a mistyped segment as a
    /// [`Fault`] instead of panicking (for the protocol hot path, where
    /// a wiped or mistyped segment must abort the job as an error value).
    pub fn try_as_f64(&self) -> Result<&[f64], Fault> {
        match self {
            SegmentData::F64(v) => Ok(v),
            SegmentData::Bytes(_) => Err(Fault::Protocol("segment holds bytes, not f64")),
        }
    }

    /// Fallible mutable counterpart of [`Self::try_as_f64`].
    pub fn try_as_f64_mut(&mut self) -> Result<&mut Vec<f64>, Fault> {
        match self {
            SegmentData::F64(v) => Ok(v),
            SegmentData::Bytes(_) => Err(Fault::Protocol("segment holds bytes, not f64")),
        }
    }

    /// Borrow as byte slice, reporting a mistyped segment as a [`Fault`].
    pub fn try_as_bytes(&self) -> Result<&[u8], Fault> {
        match self {
            SegmentData::Bytes(v) => Ok(v),
            SegmentData::F64(_) => Err(Fault::Protocol("segment holds f64, not bytes")),
        }
    }

    /// Fallible mutable counterpart of [`Self::try_as_bytes`].
    pub fn try_as_bytes_mut(&mut self) -> Result<&mut Vec<u8>, Fault> {
        match self {
            SegmentData::Bytes(v) => Ok(v),
            SegmentData::F64(_) => Err(Fault::Protocol("segment holds f64, not bytes")),
        }
    }
}

/// A handle to a shared segment. Cloning the handle shares the storage
/// (like re-attaching with `shmat`).
pub type ShmSegment = Arc<RwLock<SegmentData>>;

/// Per-node shared-memory table: name → segment.
///
/// Thread-safe; the map lock is only held to look up / insert handles, the
/// segment `RwLock` protects the payload.
///
/// A store can be *frozen* (fencing a suspect node): every subsequent
/// attach or create hands out a **detached copy** of the segment instead
/// of the shared handle, so a zombie's late writes land in private memory
/// that nothing else can ever read, and removes become no-ops. The real
/// table is preserved untouched as quarantined evidence until the node is
/// either recommissioned (wiped) or powered off.
#[derive(Default)]
pub struct ShmStore {
    segments: Mutex<BTreeMap<String, ShmSegment>>,
    frozen: AtomicBool,
}

impl ShmStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// `shmget(key, IPC_CREAT)`: return the existing segment named `name`
    /// or create it by calling `init`. The boolean is `true` when the
    /// segment already existed (a restarted rank re-attaching).
    pub fn get_or_create(
        &self,
        name: &str,
        init: impl FnOnce() -> SegmentData,
    ) -> (ShmSegment, bool) {
        let mut map = self.segments.lock();
        if let Some(seg) = map.get(name) {
            if self.is_frozen() {
                // zombie re-attach: a private copy it can scribble on
                return (Arc::new(RwLock::new(seg.read().clone())), true);
            }
            (Arc::clone(seg), true)
        } else {
            let seg = Arc::new(RwLock::new(init()));
            if !self.is_frozen() {
                map.insert(name.to_string(), Arc::clone(&seg));
            }
            (seg, false)
        }
    }

    /// Attach to an existing segment, if present. On a frozen store the
    /// handle is a detached copy — writes through it are invisible.
    pub fn attach(&self, name: &str) -> Option<ShmSegment> {
        let map = self.segments.lock();
        let seg = map.get(name)?;
        if self.is_frozen() {
            return Some(Arc::new(RwLock::new(seg.read().clone())));
        }
        Some(Arc::clone(seg))
    }

    /// `shmctl(IPC_RMID)`: drop the segment from the table. Existing
    /// handles keep their data (like detached-but-mapped memory) but new
    /// attaches fail. No-op on a frozen store.
    pub fn remove(&self, name: &str) -> bool {
        if self.is_frozen() {
            return false;
        }
        self.segments.lock().remove(name).is_some()
    }

    /// Fence this node's memory: from now on every attach/create returns
    /// a detached private copy and removes are rejected, so no late write
    /// can reach the real segments. Idempotent.
    pub fn freeze(&self) {
        self.frozen.store(true, Ordering::SeqCst);
    }

    /// Lift a freeze (recommissioning; the caller is expected to wipe).
    pub fn thaw(&self) {
        self.frozen.store(false, Ordering::SeqCst);
    }

    /// Is the store frozen?
    pub fn is_frozen(&self) -> bool {
        self.frozen.load(Ordering::SeqCst)
    }

    /// Number of segments currently in the table.
    pub fn len(&self) -> usize {
        self.segments.lock().len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.segments.lock().is_empty()
    }

    /// Total bytes held by all segments — the node's checkpoint memory
    /// footprint. Used to validate the paper's Table 1 memory accounting
    /// against live segment sizes.
    pub fn total_bytes(&self) -> usize {
        let map = self.segments.lock();
        map.values().map(|s| s.read().size_bytes()).sum()
    }

    /// Bytes held by segments whose name starts with `prefix`.
    pub fn bytes_with_prefix(&self, prefix: &str) -> usize {
        let map = self.segments.lock();
        map.iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(_, s)| s.read().size_bytes())
            .sum()
    }

    /// Names of all segments (sorted).
    pub fn names(&self) -> Vec<String> {
        self.segments.lock().keys().cloned().collect()
    }

    /// Power-off: drop the whole segment table, and best-effort clear the
    /// payloads of segments nobody holds locked. The table clear is what
    /// matters semantically (no restarted rank can ever re-attach); the
    /// payload clear additionally makes stale handles observe the data
    /// loss. Clearing uses `try_write` so that a *dying* rank that still
    /// holds a guard on its own segment (e.g. mid-encode) cannot deadlock
    /// the power-off.
    pub fn wipe(&self) {
        let mut map = self.segments.lock();
        for seg in map.values() {
            if let Some(mut g) = seg.try_write() {
                match &mut *g {
                    SegmentData::F64(v) => {
                        v.clear();
                        v.shrink_to_fit();
                    }
                    SegmentData::Bytes(v) => {
                        v.clear();
                        v.shrink_to_fit();
                    }
                }
            }
        }
        map.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_then_reattach_preserves_data() {
        let store = ShmStore::new();
        let (seg, existed) = store.get_or_create("a", || SegmentData::F64(vec![1.0, 2.0]));
        assert!(!existed);
        seg.write().as_f64_mut()[0] = 9.0;
        drop(seg); // "process exits"
        let (seg2, existed2) = store.get_or_create("a", || panic!("must not re-init"));
        assert!(existed2);
        assert_eq!(seg2.read().as_f64()[0], 9.0);
    }

    #[test]
    fn attach_missing_returns_none() {
        let store = ShmStore::new();
        assert!(store.attach("nope").is_none());
    }

    #[test]
    fn remove_detaches_name_but_keeps_handles() {
        let store = ShmStore::new();
        let (seg, _) = store.get_or_create("x", || SegmentData::Bytes(vec![1, 2, 3]));
        assert!(store.remove("x"));
        assert!(!store.remove("x"));
        assert!(store.attach("x").is_none());
        // existing handle still works (detached mapping)
        assert_eq!(seg.read().as_bytes(), &[1, 2, 3]);
    }

    #[test]
    fn total_bytes_accounts_all_segments() {
        let store = ShmStore::new();
        store.get_or_create("m", || SegmentData::F64(vec![0.0; 10]));
        store.get_or_create("h", || SegmentData::Bytes(vec![0; 16]));
        assert_eq!(store.total_bytes(), 10 * 8 + 16);
        assert_eq!(store.bytes_with_prefix("m"), 80);
    }

    #[test]
    fn wipe_clears_even_held_handles() {
        let store = ShmStore::new();
        let (seg, _) = store.get_or_create("m", || SegmentData::F64(vec![1.0; 4]));
        store.wipe();
        assert!(store.is_empty());
        assert!(
            seg.read().as_f64().is_empty(),
            "power-off must destroy data"
        );
    }

    #[test]
    #[should_panic(expected = "segment holds bytes")]
    fn typed_access_is_enforced() {
        let d = SegmentData::Bytes(vec![1]);
        d.as_f64();
    }

    #[test]
    fn fallible_typed_access_returns_fault() {
        let mut d = SegmentData::Bytes(vec![1]);
        assert_eq!(
            d.try_as_f64(),
            Err(Fault::Protocol("segment holds bytes, not f64"))
        );
        assert!(d.try_as_bytes().is_ok());
        assert!(d.try_as_bytes_mut().is_ok());
        let mut f = SegmentData::F64(vec![0.5]);
        assert!(f.try_as_f64_mut().is_ok());
        assert_eq!(
            f.try_as_bytes(),
            Err(Fault::Protocol("segment holds f64, not bytes"))
        );
    }

    #[test]
    fn frozen_store_detaches_writes_and_rejects_removes() {
        let store = ShmStore::new();
        let (real, _) = store.get_or_create("s", || SegmentData::Bytes(vec![7; 4]));
        store.freeze();
        assert!(store.is_frozen());
        // late attach sees the data but writes land in a private copy
        let zombie = store.attach("s").unwrap();
        zombie.write().as_bytes_mut()[0] = 99;
        assert_eq!(real.read().as_bytes(), &[7; 4], "real segment untouched");
        // late re-create likewise
        let (z2, existed) = store.get_or_create("s", || unreachable!());
        assert!(existed);
        z2.write().as_bytes_mut()[1] = 1;
        assert_eq!(real.read().as_bytes(), &[7; 4]);
        // a brand-new segment is never published
        store.get_or_create("new", || SegmentData::Bytes(vec![1]));
        assert!(store.attach("new").is_none());
        // and removes are refused
        assert!(!store.remove("s"));
        assert!(store.attach("s").is_some());
        // thaw restores shared semantics
        store.thaw();
        let back = store.attach("s").unwrap();
        back.write().as_bytes_mut()[0] = 5;
        assert_eq!(real.read().as_bytes()[0], 5);
    }

    #[test]
    fn concurrent_get_or_create_returns_same_segment() {
        let store = Arc::new(ShmStore::new());
        let mut handles = vec![];
        for _ in 0..8 {
            let s = Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                let (seg, _) = s.get_or_create("shared", || SegmentData::F64(vec![0.0; 8]));
                Arc::as_ptr(&seg) as usize
            }));
        }
        let ptrs: Vec<usize> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(
            ptrs.windows(2).all(|w| w[0] == w[1]),
            "all attaches must share storage"
        );
    }
}
