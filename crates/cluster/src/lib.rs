#![warn(unused)]
//! # skt-cluster
//!
//! The virtual cluster substrate underneath the Self-Checkpoint / SKT-HPL
//! reproduction. The paper runs on real HPC machines (Tianhe-1A/2, a local
//! Infiniband cluster); this crate provides a deterministic, in-process
//! stand-in with the properties the paper's protocol actually depends on:
//!
//! * **Nodes with persistent shared memory** ([`shm`]): a SHM segment
//!   survives the death of the *process* (thread) that created it — exactly
//!   Linux `shmget` semantics — but is wiped when its *node* fails (power
//!   off). Checkpoints of healthy nodes therefore outlive an aborted job.
//! * **Storage devices** ([`storage`]): bandwidth/latency-modeled HDD, SSD
//!   and ramfs block stores for the BLCR/SCR baselines of Table 3.
//! * **A network model** ([`net`]): α-β (latency + inverse bandwidth) cost
//!   model with per-node port sharing, used to extrapolate encoding times
//!   to Tianhe-scale (Figure 13) without pretending the laptop is a
//!   supercomputer.
//! * **Failure injection** ([`failure`]): deterministic "kill node X the
//!   n-th time it passes probe L" plans, so the protocol's CASE 1 / CASE 2
//!   failure windows (paper Figures 2–5) can each be exercised exactly.
//! * **An observation bus** ([`events`]): upper layers (collectives, the
//!   checkpoint protocol, storage) emit typed [`events::Event`]s into the
//!   cluster-wide [`events::EventBus`]; harnesses subscribe
//!   [`events::Observer`]s to collect phase timings and recovery
//!   decisions without any layer keeping private timing state.
//! * **The cluster itself** ([`cluster`]): node inventory, spare pool,
//!   rank-to-node mapping (the `ranklist` of §5.2), and MPI-style
//!   whole-job abort on node failure.
//! * **Multi-tenant service substrate** ([`service`]): disjoint shard
//!   placement over a common node pool, admission control with a FIFO
//!   wait queue, reservation-aware spare arbitration, and the
//!   deterministic event queue the service daemon's loop pops from.

pub mod cluster;
pub mod events;
pub mod failure;
pub mod net;
pub mod service;
pub mod shm;
pub mod storage;
pub mod suspicion;

pub use cluster::{Cluster, ClusterConfig, NodeId, Ranklist};
pub use events::{Event, EventBus, Observer, Recorder};
pub use failure::{
    CorruptPlan, FailureInjector, FailurePlan, Fault, FaultAction, FaultPlan, GrayKind, GrayPlan,
    Region,
};
pub use net::{NetModel, NetModelError};
pub use service::{
    Admission, AdmitError, ArbitrationError, EventQueue, ReleaseAudit, ReshapeError, ResizePlan,
    ServicePool, SpareGrant, TenantId, TenantSpec,
};
pub use shm::{SegmentData, ShmSegment, ShmStore};
pub use storage::{Device, DeviceKind};
pub use suspicion::{HeartbeatConfig, ProbeVerdict, Suspicion, SuspicionMonitor};
// The runtime seam lives in `skt-sim`; re-export it here so upper layers
// (mps, core, ftsim) reach it through their existing cluster dependency.
pub use skt_sim::{
    explore, explore_yield_kills, RealRuntime, Runtime, SimRuntime, SplitMix64, Stopwatch,
    YieldKillReport, YieldOutcome,
};
