//! Matrix/vector norms and the HPL residual check.

use crate::matrix::Matrix;

/// Infinity norm of a vector: `max |x_i|`.
pub fn norm_inf_vec(x: &[f64]) -> f64 {
    x.iter().map(|v| v.abs()).fold(0.0, f64::max)
}

/// Infinity norm of a matrix: max row sum of absolute values.
pub fn norm_inf_mat(a: &Matrix) -> f64 {
    let mut row_sums = vec![0.0f64; a.rows()];
    for j in 0..a.cols() {
        for (i, v) in a.col(j).iter().enumerate() {
            row_sums[i] += v.abs();
        }
    }
    norm_inf_vec(&row_sums)
}

/// One norm of a matrix: max column sum of absolute values.
pub fn norm_one_mat(a: &Matrix) -> f64 {
    (0..a.cols())
        .map(|j| a.col(j).iter().map(|v| v.abs()).sum())
        .fold(0.0, f64::max)
}

/// The scaled residual HPL reports:
/// `||Ax - b||_inf / (eps * (||A||_inf * ||x||_inf + ||b||_inf) * n)`.
///
/// HPL accepts the solution when this is below 16.0.
pub fn hpl_residual(a: &Matrix, x: &[f64], b: &[f64]) -> f64 {
    let n = a.rows();
    let ax = a.matvec(x);
    let r: Vec<f64> = ax.iter().zip(b).map(|(p, q)| p - q).collect();
    let num = norm_inf_vec(&r);
    let den = crate::EPS * (norm_inf_mat(a) * norm_inf_vec(x) + norm_inf_vec(b)) * n as f64;
    num / den
}

/// HPL's pass threshold for [`hpl_residual`].
pub const HPL_RESIDUAL_THRESHOLD: f64 = 16.0;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::MatGen;
    use crate::solve::solve_ref;

    #[test]
    fn norms_of_known_matrix() {
        let a = Matrix::from_fn(2, 2, |i, j| match (i, j) {
            (0, 0) => 1.0,
            (0, 1) => -2.0,
            (1, 0) => 3.0,
            (1, 1) => 4.0,
            _ => unreachable!(),
        });
        assert_eq!(norm_inf_mat(&a), 7.0); // row 1: 3+4
        assert_eq!(norm_one_mat(&a), 6.0); // col 1: 2+4
        assert_eq!(norm_inf_vec(&[1.0, -9.0, 2.0]), 9.0);
    }

    #[test]
    fn residual_of_exact_solve_passes() {
        let n = 30;
        let a = Matrix::from_gen(n, n, &MatGen::new(1));
        let b: Vec<f64> = (0..n).map(|i| MatGen::new(1).rhs(i as u64)).collect();
        let x = solve_ref(&a, &b, 8).unwrap();
        let r = hpl_residual(&a, &x, &b);
        assert!(r < HPL_RESIDUAL_THRESHOLD, "residual {r}");
    }

    #[test]
    fn residual_of_garbage_fails() {
        let n = 30;
        let a = Matrix::from_gen(n, n, &MatGen::new(1));
        let b: Vec<f64> = (0..n).map(|i| MatGen::new(1).rhs(i as u64)).collect();
        let x = vec![1.0; n];
        let r = hpl_residual(&a, &x, &b);
        assert!(
            r > HPL_RESIDUAL_THRESHOLD,
            "residual {r} unexpectedly small"
        );
    }
}
