//! A minimal owned dense matrix used by tests, examples, and the
//! single-node reference paths. Column-major, like everything in this
//! workspace.

use crate::gen::MatGen;

/// Owned column-major `rows x cols` matrix of `f64`.
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// All-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix (square).
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Matrix filled by the deterministic generator: element `(i, j)` is
    /// `gen.entry(i, j)`. Regenerating with the same seed yields the same
    /// matrix — the property the HPL restart path relies on.
    pub fn from_gen(rows: usize, cols: usize, gen: &MatGen) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for j in 0..cols {
            for i in 0..rows {
                m[(i, j)] = gen.entry(i as u64, j as u64);
            }
        }
        m
    }

    /// Build from a closure over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for j in 0..cols {
            for i in 0..rows {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Leading dimension of the underlying storage (== rows: storage is
    /// always packed).
    pub fn ld(&self) -> usize {
        self.rows
    }

    /// Underlying column-major storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable underlying column-major storage.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Column `j` as a slice.
    pub fn col(&self, j: usize) -> &[f64] {
        assert!(j < self.cols);
        &self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// Column `j` as a mutable slice.
    pub fn col_mut(&mut self, j: usize) -> &mut [f64] {
        assert!(j < self.cols);
        &mut self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// Matrix-vector product `A * x`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "matvec: dimension mismatch");
        let mut y = vec![0.0; self.rows];
        for j in 0..self.cols {
            let xj = x[j];
            if xj == 0.0 {
                continue;
            }
            let col = self.col(j);
            for i in 0..self.rows {
                y[i] += col[i] * xj;
            }
        }
        y
    }

    /// Naive (reference) matrix product, for validating `dgemm`.
    pub fn matmul_ref(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul: dimension mismatch");
        let mut c = Matrix::zeros(self.rows, other.cols);
        for j in 0..other.cols {
            for k in 0..self.cols {
                let b = other[(k, j)];
                if b == 0.0 {
                    continue;
                }
                for i in 0..self.rows {
                    c[(i, j)] += self[(i, k)] * b;
                }
            }
        }
        c
    }

    /// Max-abs difference between two same-shape matrices.
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(i < self.rows && j < self.cols, "index out of bounds");
        &self.data[i + j * self.rows]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(i < self.rows && j < self.cols, "index out of bounds");
        &mut self.data[i + j * self.rows]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_matvec_is_identity() {
        let a = Matrix::identity(4);
        let x = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(a.matvec(&x), x);
    }

    #[test]
    fn indexing_is_column_major() {
        let mut a = Matrix::zeros(2, 3);
        a[(1, 2)] = 7.0;
        assert_eq!(a.as_slice()[1 + 2 * 2], 7.0);
    }

    #[test]
    fn from_gen_is_deterministic() {
        let g = MatGen::new(42);
        let a = Matrix::from_gen(5, 5, &g);
        let b = Matrix::from_gen(5, 5, &MatGen::new(42));
        assert_eq!(a, b);
        let c = Matrix::from_gen(5, 5, &MatGen::new(43));
        assert!(a.max_abs_diff(&c) > 0.0);
    }

    #[test]
    fn matmul_ref_small_known_product() {
        let a = Matrix::from_fn(2, 2, |i, j| (i * 2 + j + 1) as f64); // [[1,2],[3,4]]
        let b = Matrix::identity(2);
        assert_eq!(a.matmul_ref(&b), a);
    }

    #[test]
    #[should_panic]
    fn matvec_rejects_bad_shape() {
        let a = Matrix::zeros(2, 3);
        a.matvec(&[1.0, 2.0]);
    }
}
