//! Level-2 BLAS kernels on column-major storage with explicit leading
//! dimension.

/// Rank-1 update `A := A + alpha * x * y^T` where `A` is `m x n`
/// column-major with leading dimension `lda`.
///
/// This is the inner kernel of unblocked LU panel factorization.
pub fn dger(m: usize, n: usize, alpha: f64, x: &[f64], y: &[f64], a: &mut [f64], lda: usize) {
    assert!(x.len() >= m, "dger: x too short");
    assert!(y.len() >= n, "dger: y too short");
    assert!(lda >= m.max(1), "dger: lda < m");
    assert!(n == 0 || a.len() >= (n - 1) * lda + m, "dger: a too small");
    if alpha == 0.0 || m == 0 || n == 0 {
        return;
    }
    for j in 0..n {
        let t = alpha * y[j];
        if t == 0.0 {
            continue;
        }
        let col = &mut a[j * lda..j * lda + m];
        for (ai, xi) in col.iter_mut().zip(x[..m].iter()) {
            *ai += t * *xi;
        }
    }
}

/// Matrix-vector product `y := alpha * A * x + beta * y` (no transpose),
/// `A` column-major `m x n` with leading dimension `lda`.
pub fn dgemv(
    m: usize,
    n: usize,
    alpha: f64,
    a: &[f64],
    lda: usize,
    x: &[f64],
    beta: f64,
    y: &mut [f64],
) {
    assert!(x.len() >= n, "dgemv: x too short");
    assert!(y.len() >= m, "dgemv: y too short");
    assert!(lda >= m.max(1), "dgemv: lda < m");
    if beta != 1.0 {
        for v in y[..m].iter_mut() {
            *v *= beta;
        }
    }
    if alpha == 0.0 {
        return;
    }
    for j in 0..n {
        let t = alpha * x[j];
        if t == 0.0 {
            continue;
        }
        let col = &a[j * lda..j * lda + m];
        for (yi, ai) in y[..m].iter_mut().zip(col.iter()) {
            *yi += t * *ai;
        }
    }
}

/// Triangular solve `x := A^{-1} x` for a **lower** triangular, **unit**
/// diagonal `n x n` matrix stored column-major with leading dimension
/// `lda` (the `L` factor of LU).
pub fn dtrsv(n: usize, a: &[f64], lda: usize, x: &mut [f64]) {
    assert!(x.len() >= n, "dtrsv: x too short");
    assert!(lda >= n.max(1), "dtrsv: lda < n");
    for j in 0..n {
        let xj = x[j];
        if xj == 0.0 {
            continue;
        }
        let col = &a[j * lda..j * lda + n];
        for i in j + 1..n {
            x[i] -= xj * col[i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;

    #[test]
    fn dger_matches_reference() {
        let (m, n) = (3, 2);
        let mut a = Matrix::from_fn(m, n, |i, j| (i + j) as f64);
        let x = vec![1.0, 2.0, 3.0];
        let y = vec![4.0, 5.0];
        let expect = Matrix::from_fn(m, n, |i, j| (i + j) as f64 + 2.0 * x[i] * y[j]);
        let lda = a.ld();
        dger(m, n, 2.0, &x, &y, a.as_mut_slice(), lda);
        assert!(a.max_abs_diff(&expect) < 1e-14);
    }

    #[test]
    fn dger_with_zero_alpha_is_noop() {
        let mut a = Matrix::from_fn(2, 2, |i, j| (i * 2 + j) as f64);
        let before = a.clone();
        let lda = a.ld();
        dger(2, 2, 0.0, &[1.0, 1.0], &[1.0, 1.0], a.as_mut_slice(), lda);
        assert_eq!(a, before);
    }

    #[test]
    fn dgemv_matches_matvec() {
        let a = Matrix::from_fn(4, 3, |i, j| (i * 3 + j) as f64 * 0.25);
        let x = vec![1.0, -1.0, 2.0];
        let mut y = vec![1.0; 4];
        dgemv(4, 3, 1.0, a.as_slice(), a.ld(), &x, 0.0, &mut y);
        let expect = a.matvec(&x);
        for i in 0..4 {
            assert!((y[i] - expect[i]).abs() < 1e-13);
        }
    }

    #[test]
    fn dgemv_beta_scales_existing_y() {
        let a = Matrix::zeros(2, 2);
        let mut y = vec![3.0, 5.0];
        dgemv(2, 2, 1.0, a.as_slice(), 2, &[0.0, 0.0], 2.0, &mut y);
        assert_eq!(y, vec![6.0, 10.0]);
    }

    #[test]
    fn dtrsv_solves_unit_lower_system() {
        // L = [[1,0],[2,1]], solve L x = [3, 8] -> x = [3, 2]
        let l = Matrix::from_fn(2, 2, |i, j| match (i, j) {
            (0, 0) | (1, 1) => 1.0,
            (1, 0) => 2.0,
            _ => 0.0,
        });
        let mut x = vec![3.0, 8.0];
        dtrsv(2, l.as_slice(), 2, &mut x);
        assert_eq!(x, vec![3.0, 2.0]);
    }

    #[test]
    fn dtrsv_ignores_stored_diagonal() {
        // unit-diagonal solve must not read the stored diagonal values
        let mut l = Matrix::identity(3);
        l[(0, 0)] = 99.0;
        l[(2, 1)] = 1.0;
        let mut x = vec![1.0, 1.0, 2.0];
        dtrsv(3, l.as_slice(), 3, &mut x);
        assert_eq!(x, vec![1.0, 1.0, 1.0]);
    }
}
