//! Level-1 BLAS kernels on contiguous (unit-stride) `f64` slices.
//!
//! HPL only ever touches unit-stride column vectors (column-major storage),
//! so the stride arguments of reference BLAS are omitted; every routine
//! operates on `&[f64]` / `&mut [f64]` slices directly, which lets the
//! compiler vectorize the loops.

/// `x := alpha * x`.
pub fn dscal(alpha: f64, x: &mut [f64]) {
    if alpha == 1.0 {
        return;
    }
    for v in x.iter_mut() {
        *v *= alpha;
    }
}

/// `y := alpha * x + y`. Panics if lengths differ.
pub fn daxpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "daxpy: length mismatch");
    if alpha == 0.0 {
        return;
    }
    for (yi, xi) in y.iter_mut().zip(x.iter()) {
        *yi += alpha * *xi;
    }
}

/// Dot product `x . y`. Panics if lengths differ.
pub fn ddot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "ddot: length mismatch");
    // Four partial sums so the reduction does not serialize on one
    // accumulator; the compiler turns this into SIMD adds.
    let mut s = [0.0f64; 4];
    let chunks = x.len() / 4;
    for c in 0..chunks {
        let b = c * 4;
        for l in 0..4 {
            s[l] += x[b + l] * y[b + l];
        }
    }
    let mut tail = 0.0;
    for i in chunks * 4..x.len() {
        tail += x[i] * y[i];
    }
    s[0] + s[1] + s[2] + s[3] + tail
}

/// Index of the element with the largest absolute value; `None` for an
/// empty slice. Ties resolve to the lowest index, matching BLAS `idamax`.
pub fn idamax(x: &[f64]) -> Option<usize> {
    if x.is_empty() {
        return None;
    }
    let mut best = 0usize;
    let mut bestv = x[0].abs();
    for (i, v) in x.iter().enumerate().skip(1) {
        let a = v.abs();
        if a > bestv {
            best = i;
            bestv = a;
        }
    }
    Some(best)
}

/// Swap the contents of two equal-length slices.
pub fn dswap(x: &mut [f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "dswap: length mismatch");
    for (a, b) in x.iter_mut().zip(y.iter_mut()) {
        std::mem::swap(a, b);
    }
}

/// `y := x`.
pub fn dcopy(x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "dcopy: length mismatch");
    y.copy_from_slice(x);
}

/// Euclidean norm with scaling to avoid overflow on large values.
pub fn dnrm2(x: &[f64]) -> f64 {
    let mut scale = 0.0f64;
    let mut ssq = 1.0f64;
    for &v in x {
        if v != 0.0 {
            let a = v.abs();
            if scale < a {
                let r = scale / a;
                ssq = 1.0 + ssq * r * r;
                scale = a;
            } else {
                let r = a / scale;
                ssq += r * r;
            }
        }
    }
    scale * ssq.sqrt()
}

/// Sum of absolute values.
pub fn dasum(x: &[f64]) -> f64 {
    x.iter().map(|v| v.abs()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dscal_scales_in_place() {
        let mut x = vec![1.0, -2.0, 3.0];
        dscal(2.0, &mut x);
        assert_eq!(x, vec![2.0, -4.0, 6.0]);
    }

    #[test]
    fn dscal_by_one_is_identity() {
        let mut x = vec![1.5, 2.5];
        dscal(1.0, &mut x);
        assert_eq!(x, vec![1.5, 2.5]);
    }

    #[test]
    fn daxpy_accumulates() {
        let x = vec![1.0, 2.0, 3.0];
        let mut y = vec![10.0, 20.0, 30.0];
        daxpy(-2.0, &x, &mut y);
        assert_eq!(y, vec![8.0, 16.0, 24.0]);
    }

    #[test]
    fn ddot_matches_naive() {
        let x: Vec<f64> = (0..37).map(|i| i as f64 * 0.5).collect();
        let y: Vec<f64> = (0..37).map(|i| (i as f64).sin()).collect();
        let naive: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        assert!((ddot(&x, &y) - naive).abs() < 1e-10 * naive.abs().max(1.0));
    }

    #[test]
    fn idamax_finds_largest_magnitude() {
        assert_eq!(idamax(&[1.0, -5.0, 3.0]), Some(1));
        assert_eq!(idamax(&[]), None);
        // ties resolve to the first occurrence
        assert_eq!(idamax(&[2.0, -2.0]), Some(0));
    }

    #[test]
    fn dswap_exchanges() {
        let mut x = vec![1.0, 2.0];
        let mut y = vec![3.0, 4.0];
        dswap(&mut x, &mut y);
        assert_eq!(x, vec![3.0, 4.0]);
        assert_eq!(y, vec![1.0, 2.0]);
    }

    #[test]
    fn dnrm2_handles_extreme_scales() {
        let x = vec![3e200, 4e200];
        assert!((dnrm2(&x) - 5e200).abs() < 1e190);
        let y = vec![3.0, 4.0];
        assert!((dnrm2(&y) - 5.0).abs() < 1e-12);
        assert_eq!(dnrm2(&[]), 0.0);
    }

    #[test]
    fn dasum_sums_magnitudes() {
        assert_eq!(dasum(&[1.0, -2.0, 3.0]), 6.0);
    }
}
