#![warn(unused)]
#![allow(clippy::needless_range_loop)] // index loops over coupled arrays are the clearest form for BLAS-style kernels
//! # skt-linalg
//!
//! Dense linear-algebra kernels for the Self-Checkpoint / SKT-HPL
//! reproduction.
//!
//! The crate provides the subset of BLAS/LAPACK functionality that
//! High-Performance Linpack needs, implemented from scratch:
//!
//! * level-1 kernels ([`blas1`]): `dscal`, `daxpy`, `idamax`, `dswap`, …
//! * level-2 kernels ([`blas2`]): `dger`, `dgemv`, `dtrsv`
//! * level-3 kernels ([`blas3`]): a cache-blocked `dgemm` and the `dtrsm`
//!   variants used by LU factorization
//! * LU factorization ([`lu`]): unblocked `dgetf2`, blocked `dgetrf`,
//!   pivot application `dlaswp`
//! * triangular/back substitution solvers ([`solve`])
//! * matrix norms and residual checks ([`norms`])
//! * a deterministic, coordinate-addressable matrix generator ([`gen`])
//!   so that distributed ranks can regenerate exactly the same global
//!   matrix from a seed — the property HPL relies on after a restart.
//!
//! All dense matrices are **column-major** with an explicit leading
//! dimension `lda`, mirroring BLAS conventions: element `(i, j)` of an
//! `m x n` matrix stored in slice `a` lives at `a[i + j * lda]`.

pub mod blas1;
pub mod blas2;
pub mod blas3;
pub mod gen;
pub mod lu;
pub mod matrix;
pub mod norms;
pub mod solve;

pub use blas1::{dasum, daxpy, dcopy, ddot, dnrm2, dscal, dswap, idamax};
pub use blas2::{dgemv, dger, dtrsv};
pub use blas3::{dgemm, dtrsm_llnu, dtrsm_lunn, Trans};
pub use gen::MatGen;
pub use lu::{dgetf2, dgetrf, dlaswp};
pub use matrix::Matrix;
pub use norms::{norm_inf_mat, norm_inf_vec, norm_one_mat};
pub use solve::{backward_sub, forward_sub_unit, solve_ref};

/// Machine epsilon for `f64`, as used by the HPL residual check.
pub const EPS: f64 = f64::EPSILON;

/// Floating-point operation count of an `n x n` LU solve, the figure HPL
/// divides by wall time to report GFLOPS: `2/3 n^3 + 3/2 n^2`.
pub fn hpl_flops(n: u64) -> f64 {
    let n = n as f64;
    2.0 / 3.0 * n * n * n + 3.0 / 2.0 * n * n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flops_formula_matches_reference_values() {
        let f = hpl_flops(1000);
        assert!((f - (2.0 / 3.0 * 1e9 + 1.5e6)).abs() < 1.0);
    }
}
