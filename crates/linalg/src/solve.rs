//! Triangular solves against packed LU factors, and a single-node
//! reference solver used to validate the distributed HPL.

use crate::lu::{dgetrf, Singular};
use crate::matrix::Matrix;

/// Forward substitution `x := L^{-1} x` where `L` is the unit lower
/// triangle packed in the `n x n` LU factor `a` (column-major, leading
/// dimension `lda`).
pub fn forward_sub_unit(n: usize, a: &[f64], lda: usize, x: &mut [f64]) {
    assert!(x.len() >= n, "forward_sub_unit: x too short");
    for j in 0..n {
        let xj = x[j];
        if xj == 0.0 {
            continue;
        }
        let col = &a[j * lda..j * lda + n];
        for i in j + 1..n {
            x[i] -= xj * col[i];
        }
    }
}

/// Backward substitution `x := U^{-1} x` where `U` is the non-unit upper
/// triangle packed in the `n x n` LU factor `a`.
pub fn backward_sub(n: usize, a: &[f64], lda: usize, x: &mut [f64]) {
    assert!(x.len() >= n, "backward_sub: x too short");
    for j in (0..n).rev() {
        let diag = a[j + j * lda];
        assert!(diag != 0.0, "backward_sub: zero diagonal at {j}");
        let xj = x[j] / diag;
        x[j] = xj;
        if xj == 0.0 {
            continue;
        }
        let col = &a[j * lda..j * lda + j];
        for i in 0..j {
            x[i] -= xj * col[i];
        }
    }
}

/// Single-node reference `A x = b` solver via blocked LU with partial
/// pivoting. Consumes copies; returns `x`.
///
/// Used by tests and by the verification step of small HPL runs.
pub fn solve_ref(a: &Matrix, b: &[f64], nb: usize) -> Result<Vec<f64>, Singular> {
    let n = a.rows();
    assert_eq!(a.cols(), n, "solve_ref: matrix must be square");
    assert_eq!(b.len(), n, "solve_ref: rhs length mismatch");
    let mut f = a.clone();
    let mut ipiv = vec![0usize; n];
    let lda = f.ld();
    dgetrf(n, n, f.as_mut_slice(), lda, &mut ipiv, nb)?;
    let mut x = b.to_vec();
    for j in 0..n {
        x.swap(j, ipiv[j]);
    }
    forward_sub_unit(n, f.as_slice(), lda, &mut x);
    backward_sub(n, f.as_slice(), lda, &mut x);
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::MatGen;

    #[test]
    fn solve_ref_recovers_known_solution() {
        let n = 25;
        let a = Matrix::from_gen(n, n, &MatGen::new(77));
        let x_true: Vec<f64> = (0..n).map(|i| ((i * 13 % 7) as f64) - 3.0).collect();
        let b = a.matvec(&x_true);
        let x = solve_ref(&a, &b, 6).unwrap();
        let err = x
            .iter()
            .zip(&x_true)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        assert!(err < 1e-8, "error {err}");
    }

    #[test]
    fn solve_ref_identity() {
        let a = Matrix::identity(5);
        let b = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(solve_ref(&a, &b, 2).unwrap(), b);
    }

    #[test]
    fn solve_ref_detects_singular() {
        let a = Matrix::zeros(3, 3);
        assert!(solve_ref(&a, &[1.0, 1.0, 1.0], 2).is_err());
    }
}
