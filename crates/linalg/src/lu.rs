//! LU factorization with partial pivoting (Gaussian Elimination with
//! Partial Pivoting — the HPL kernel) on column-major storage.

use crate::blas1::idamax;
use crate::blas2::dger;
use crate::blas3::{dgemm, dtrsm_llnu, Trans};

/// Error returned when a pivot column is exactly zero (singular to working
/// precision).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Singular {
    /// Global column at which factorization broke down.
    pub col: usize,
}

impl std::fmt::Display for Singular {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "matrix is singular at column {}", self.col)
    }
}

impl std::error::Error for Singular {}

/// Unblocked right-looking LU with partial pivoting of an `m x n` panel
/// (`m >= n` in HPL usage), in place.
///
/// On return, `a` holds `L` (unit lower, below the diagonal) and `U` (upper
/// including the diagonal); `ipiv[j] = i` records that row `j` was swapped
/// with row `i >= j` at step `j` (LAPACK convention, 0-based).
pub fn dgetf2(
    m: usize,
    n: usize,
    a: &mut [f64],
    lda: usize,
    ipiv: &mut [usize],
) -> Result<(), Singular> {
    assert!(lda >= m.max(1), "dgetf2: lda < m");
    assert!(ipiv.len() >= n.min(m), "dgetf2: ipiv too short");
    let steps = m.min(n);
    for j in 0..steps {
        // Pivot search in column j, rows j..m.
        let col = &a[j * lda + j..j * lda + m];
        let piv_off = idamax(col).expect("non-empty pivot column");
        let piv = j + piv_off;
        if a[piv + j * lda] == 0.0 {
            return Err(Singular { col: j });
        }
        ipiv[j] = piv;
        // Swap rows j and piv across all n columns.
        if piv != j {
            for c in 0..n {
                a.swap(j + c * lda, piv + c * lda);
            }
        }
        // Scale multipliers.
        let inv = 1.0 / a[j + j * lda];
        for i in j + 1..m {
            a[i + j * lda] *= inv;
        }
        // Rank-1 update of the trailing submatrix.
        if j + 1 < n {
            // A[j+1..m, j+1..n] -= A[j+1..m, j] * A[j, j+1..n]
            let (lcol, rest) = a.split_at_mut((j + 1) * lda);
            let x: Vec<f64> = lcol[j * lda + j + 1..j * lda + m].to_vec();
            let mut y = vec![0.0; n - j - 1];
            for (c, yv) in y.iter_mut().enumerate() {
                // row j of trailing columns lives in `rest` at column offset c
                *yv = rest[c * lda + j];
            }
            // trailing block base: column j+1, row j+1 -> within `rest`,
            // offset j+1 in each column.
            dger(m - j - 1, n - j - 1, -1.0, &x, &y, &mut rest[j + 1..], lda);
        }
    }
    Ok(())
}

/// Apply row interchanges recorded by [`dgetf2`]/[`dgetrf`] to an `m x n`
/// matrix: for `j` in `[k0, k1)`, swap row `j` with row `ipiv[j]`.
///
/// This is LAPACK `dlaswp` with unit column stride, used to keep the `L`
/// panels consistent across the whole matrix.
pub fn dlaswp(n: usize, a: &mut [f64], lda: usize, k0: usize, k1: usize, ipiv: &[usize]) {
    assert!(k1 <= ipiv.len(), "dlaswp: ipiv too short");
    for j in k0..k1 {
        let p = ipiv[j];
        if p != j {
            for c in 0..n {
                a.swap(j + c * lda, p + c * lda);
            }
        }
    }
}

/// Blocked right-looking LU with partial pivoting of an `m x n` matrix with
/// block size `nb`, in place. Equivalent to LAPACK `dgetrf`.
pub fn dgetrf(
    m: usize,
    n: usize,
    a: &mut [f64],
    lda: usize,
    ipiv: &mut [usize],
    nb: usize,
) -> Result<(), Singular> {
    assert!(nb >= 1, "dgetrf: nb must be >= 1");
    assert!(ipiv.len() >= m.min(n), "dgetrf: ipiv too short");
    let steps = m.min(n);
    let mut j = 0;
    while j < steps {
        let jb = nb.min(steps - j);
        // Factor the panel A[j..m, j..j+jb].
        {
            let panel = &mut a[j * lda..];
            let mut piv = vec![0usize; jb];
            dgetf2(m - j, jb, &mut panel[j..], lda, &mut piv)
                .map_err(|e| Singular { col: j + e.col })?;
            for (t, p) in piv.iter().enumerate() {
                ipiv[j + t] = j + p;
            }
        }
        // Apply the panel's row swaps to the columns left of the panel…
        if j > 0 {
            dlaswp(j, a, lda, j, j + jb, ipiv);
        }
        // …and to the trailing columns.
        if j + jb < n {
            let ncols = n - j - jb;
            let trail = &mut a[(j + jb) * lda..];
            // swap within trailing block: rows ipiv[j..j+jb]
            for t in j..j + jb {
                let p = ipiv[t];
                if p != t {
                    for c in 0..ncols {
                        trail.swap(t + c * lda, p + c * lda);
                    }
                }
            }
            // U12 := L11^{-1} * A12
            let l11_start = j + j * lda;
            let (head, tail) = a.split_at_mut((j + jb) * lda);
            let l11 = &head[l11_start..];
            dtrsm_llnu(jb, ncols, l11, lda, &mut tail[j..], lda);
            // A22 -= L21 * U12
            if j + jb < m {
                let (head, tail) = a.split_at_mut((j + jb) * lda);
                let l21 = &head[j * lda + j + jb..];
                // U12 rows j..j+jb of tail; A22 rows j+jb..m of tail.
                let mrows = m - j - jb;
                // Need two disjoint views into `tail`: row range [j, j+jb)
                // as U12 and [j+jb, m) as A22, same columns. They share
                // columns, so copy U12 (jb x ncols) into a scratch buffer —
                // this mirrors HPL, which also materializes U.
                let mut u12 = vec![0.0; jb * ncols];
                for c in 0..ncols {
                    u12[c * jb..(c + 1) * jb].copy_from_slice(&tail[c * lda + j..c * lda + j + jb]);
                }
                dgemm(
                    Trans::No,
                    mrows,
                    ncols,
                    jb,
                    -1.0,
                    l21,
                    lda,
                    &u12,
                    jb,
                    1.0,
                    &mut tail[j + jb..],
                    lda,
                );
            }
        }
        j += jb;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::MatGen;
    use crate::matrix::Matrix;
    use crate::solve::{backward_sub, forward_sub_unit};

    /// Reconstruct P*A from L and U factors and compare.
    fn check_factorization(orig: &Matrix, fact: &Matrix, ipiv: &[usize]) {
        let n = orig.rows();
        // Build L and U from the packed factorization.
        let l = Matrix::from_fn(n, n, |i, j| {
            if i == j {
                1.0
            } else if i > j {
                fact[(i, j)]
            } else {
                0.0
            }
        });
        let u = Matrix::from_fn(n, n, |i, j| if i <= j { fact[(i, j)] } else { 0.0 });
        let lu = l.matmul_ref(&u);
        // Apply pivots to a copy of the original.
        let mut pa = orig.clone();
        let lda = pa.ld();
        dlaswp(n, pa.as_mut_slice(), lda, 0, n, ipiv);
        let diff = lu.max_abs_diff(&pa);
        assert!(diff < 1e-9, "||LU - PA|| = {diff}");
    }

    #[test]
    fn dgetf2_factors_small_matrix() {
        let g = MatGen::new(11);
        let orig = Matrix::from_gen(8, 8, &g);
        let mut a = orig.clone();
        let mut ipiv = vec![0usize; 8];
        let lda = a.ld();
        dgetf2(8, 8, a.as_mut_slice(), lda, &mut ipiv).unwrap();
        check_factorization(&orig, &a, &ipiv);
    }

    #[test]
    fn dgetrf_matches_dgetf2() {
        let g = MatGen::new(21);
        let orig = Matrix::from_gen(33, 33, &g);
        let mut a1 = orig.clone();
        let mut a2 = orig.clone();
        let mut p1 = vec![0usize; 33];
        let mut p2 = vec![0usize; 33];
        let lda = orig.ld();
        dgetf2(33, 33, a1.as_mut_slice(), lda, &mut p1).unwrap();
        dgetrf(33, 33, a2.as_mut_slice(), lda, &mut p2, 8).unwrap();
        assert_eq!(p1, p2, "pivot sequences differ");
        assert!(a1.max_abs_diff(&a2) < 1e-10);
    }

    #[test]
    fn dgetrf_various_blocks_and_rectangular() {
        for &(m, n, nb) in &[
            (16, 16, 4),
            (20, 12, 5),
            (12, 20, 7),
            (31, 31, 31),
            (31, 31, 64),
        ] {
            let g = MatGen::new((m * n * nb) as u64);
            let orig = Matrix::from_gen(m, n, &g);
            let mut a = orig.clone();
            let mut ipiv = vec![0usize; m.min(n)];
            let lda = a.ld();
            dgetrf(m, n, a.as_mut_slice(), lda, &mut ipiv, nb).unwrap();
            // verify via full solve only for square; for rectangular check
            // the factor property on the leading square block by re-running
            // unblocked and comparing.
            let mut a2 = orig.clone();
            let mut p2 = vec![0usize; m.min(n)];
            dgetf2(m, n, a2.as_mut_slice(), lda, &mut p2).unwrap();
            assert_eq!(ipiv, p2, "pivots differ for ({m},{n},{nb})");
            assert!(
                a.max_abs_diff(&a2) < 1e-9,
                "factors differ for ({m},{n},{nb})"
            );
        }
    }

    #[test]
    fn lu_solve_end_to_end() {
        let n = 40;
        let g = MatGen::new(3);
        let a0 = Matrix::from_gen(n, n, &g);
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64) * 0.1 - 2.0).collect();
        let mut b = a0.matvec(&x_true);
        let mut a = a0.clone();
        let mut ipiv = vec![0usize; n];
        let lda = a.ld();
        dgetrf(n, n, a.as_mut_slice(), lda, &mut ipiv, 8).unwrap();
        // apply pivots to b, then solve L y = Pb, U x = y
        for j in 0..n {
            b.swap(j, ipiv[j]);
        }
        forward_sub_unit(n, a.as_slice(), lda, &mut b);
        backward_sub(n, a.as_slice(), lda, &mut b);
        let err: f64 = b
            .iter()
            .zip(&x_true)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        assert!(err < 1e-8, "solve error {err}");
    }

    #[test]
    fn singular_matrix_detected() {
        let mut a = Matrix::zeros(3, 3);
        // column 1 all zeros after elimination
        a[(0, 0)] = 1.0;
        a[(2, 2)] = 1.0;
        let mut ipiv = vec![0usize; 3];
        let lda = a.ld();
        let err = dgetf2(3, 3, a.as_mut_slice(), lda, &mut ipiv).unwrap_err();
        assert_eq!(err.col, 1);
    }

    #[test]
    fn dlaswp_round_trips() {
        let g = MatGen::new(9);
        let orig = Matrix::from_gen(6, 4, &g);
        let mut a = orig.clone();
        let ipiv = vec![3, 2, 5, 3];
        let lda = a.ld();
        dlaswp(4, a.as_mut_slice(), lda, 0, 4, &ipiv);
        // applying the swaps in reverse order undoes them
        for j in (0..4).rev() {
            let p = ipiv[j];
            if p != j {
                for c in 0..4 {
                    a.as_mut_slice().swap(j + c * lda, p + c * lda);
                }
            }
        }
        assert_eq!(a, orig);
    }
}
