//! Level-3 BLAS kernels: the cache/register-blocked `dgemm` that dominates
//! HPL runtime, and the two `dtrsm` variants LU factorization needs.
//!
//! All matrices are column-major with explicit leading dimensions.

/// Transposition flag for the `A` operand of [`dgemm`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Trans {
    /// Use `A` as stored.
    No,
    /// Use `A^T`.
    Yes,
}

const MR: usize = 4; // register tile rows
const NR: usize = 4; // register tile cols
const KC: usize = 256; // k-dimension cache block

/// General matrix multiply `C := alpha * op(A) * B + beta * C`.
///
/// * `op(A)` is `m x k` (`A` stored `m x k` for [`Trans::No`], `k x m` for
///   [`Trans::Yes`]), `B` is `k x n`, `C` is `m x n`.
/// * `lda`, `ldb`, `ldc` are the leading dimensions of the stored arrays.
///
/// The [`Trans::No`] path is register-tiled (4x4 accumulators) and blocked
/// over `k`; this is the kernel the HPL trailing-matrix update spends its
/// time in. The transposed path is a straightforward loop — it is only used
/// by verification code.
#[allow(clippy::too_many_arguments)]
pub fn dgemm(
    trans_a: Trans,
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    lda: usize,
    b: &[f64],
    ldb: usize,
    beta: f64,
    c: &mut [f64],
    ldc: usize,
) {
    assert!(ldc >= m.max(1), "dgemm: ldc < m");
    assert!(n == 0 || c.len() >= (n - 1) * ldc + m, "dgemm: c too small");
    match trans_a {
        Trans::No => {
            assert!(lda >= m.max(1), "dgemm: lda < m");
            assert!(k == 0 || a.len() >= (k - 1) * lda + m, "dgemm: a too small");
        }
        Trans::Yes => {
            assert!(lda >= k.max(1), "dgemm: lda < k (transposed)");
            assert!(m == 0 || a.len() >= (m - 1) * lda + k, "dgemm: a too small");
        }
    }
    assert!(ldb >= k.max(1), "dgemm: ldb < k");
    assert!(n == 0 || b.len() >= (n - 1) * ldb + k, "dgemm: b too small");

    if m == 0 || n == 0 {
        return;
    }
    // Scale C by beta once, up front.
    if beta != 1.0 {
        for j in 0..n {
            for v in c[j * ldc..j * ldc + m].iter_mut() {
                *v = if beta == 0.0 { 0.0 } else { *v * beta };
            }
        }
    }
    if alpha == 0.0 || k == 0 {
        return;
    }

    match trans_a {
        Trans::No => dgemm_nn(m, n, k, alpha, a, lda, b, ldb, c, ldc),
        Trans::Yes => dgemm_tn(m, n, k, alpha, a, lda, b, ldb, c, ldc),
    }
}

/// `C += alpha * A * B`, no-transpose fast path.
fn dgemm_nn(
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    lda: usize,
    b: &[f64],
    ldb: usize,
    c: &mut [f64],
    ldc: usize,
) {
    // Block over k to keep the A panel in cache.
    let mut p0 = 0;
    while p0 < k {
        let kb = KC.min(k - p0);
        // Full register tiles.
        let m_tiles = m / MR;
        let n_tiles = n / NR;
        for jt in 0..n_tiles {
            let j = jt * NR;
            for it in 0..m_tiles {
                let i = it * MR;
                micro_kernel_4x4(kb, alpha, a, lda, b, ldb, c, ldc, i, j, p0);
            }
            // Remainder rows for this column tile.
            if m_tiles * MR < m {
                edge_block(
                    m_tiles * MR,
                    m,
                    j,
                    j + NR,
                    p0,
                    kb,
                    alpha,
                    a,
                    lda,
                    b,
                    ldb,
                    c,
                    ldc,
                );
            }
        }
        // Remainder columns (all rows).
        if n_tiles * NR < n {
            edge_block(0, m, n_tiles * NR, n, p0, kb, alpha, a, lda, b, ldb, c, ldc);
        }
        p0 += kb;
    }
}

/// 4x4 register-tile kernel: `C[i..i+4, j..j+4] += alpha * A[i..i+4, p0..p0+kb] * B[p0..p0+kb, j..j+4]`.
#[allow(clippy::too_many_arguments)]
#[inline]
fn micro_kernel_4x4(
    kb: usize,
    alpha: f64,
    a: &[f64],
    lda: usize,
    b: &[f64],
    ldb: usize,
    c: &mut [f64],
    ldc: usize,
    i: usize,
    j: usize,
    p0: usize,
) {
    let mut acc = [[0.0f64; MR]; NR];
    // SAFETY: callers guarantee i+MR <= m <= lda bounds and j+NR <= n,
    // p0+kb <= k; the slice-length asserts in `dgemm` established that the
    // corresponding flat indices are in range.
    unsafe {
        for p in p0..p0 + kb {
            let acol = a.get_unchecked(i + p * lda..i + p * lda + MR);
            let a0 = *acol.get_unchecked(0);
            let a1 = *acol.get_unchecked(1);
            let a2 = *acol.get_unchecked(2);
            let a3 = *acol.get_unchecked(3);
            for (jj, accj) in acc.iter_mut().enumerate() {
                let bv = *b.get_unchecked(p + (j + jj) * ldb);
                accj[0] += a0 * bv;
                accj[1] += a1 * bv;
                accj[2] += a2 * bv;
                accj[3] += a3 * bv;
            }
        }
        for (jj, accj) in acc.iter().enumerate() {
            let cc = c.get_unchecked_mut(i + (j + jj) * ldc..i + (j + jj) * ldc + MR);
            for ii in 0..MR {
                *cc.get_unchecked_mut(ii) += alpha * accj[ii];
            }
        }
    }
}

/// Scalar fallback for tile edges: rows `[i0, i1)`, cols `[j0, j1)`.
#[allow(clippy::too_many_arguments)]
fn edge_block(
    i0: usize,
    i1: usize,
    j0: usize,
    j1: usize,
    p0: usize,
    kb: usize,
    alpha: f64,
    a: &[f64],
    lda: usize,
    b: &[f64],
    ldb: usize,
    c: &mut [f64],
    ldc: usize,
) {
    for j in j0..j1 {
        for p in p0..p0 + kb {
            let t = alpha * b[p + j * ldb];
            if t == 0.0 {
                continue;
            }
            let acol = &a[i0 + p * lda..i1 + p * lda];
            let ccol = &mut c[i0 + j * ldc..i1 + j * ldc];
            for (cv, av) in ccol.iter_mut().zip(acol.iter()) {
                *cv += t * *av;
            }
        }
    }
}

/// `C += alpha * A^T * B` reference path (used by verification only).
fn dgemm_tn(
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    lda: usize,
    b: &[f64],
    ldb: usize,
    c: &mut [f64],
    ldc: usize,
) {
    for j in 0..n {
        for i in 0..m {
            let mut s = 0.0;
            let acol = &a[i * lda..i * lda + k];
            let bcol = &b[j * ldb..j * ldb + k];
            for p in 0..k {
                s += acol[p] * bcol[p];
            }
            c[i + j * ldc] += alpha * s;
        }
    }
}

/// Triangular solve with multiple right-hand sides:
/// `B := L^{-1} * B` where `L` is the **unit lower** triangular `k x k`
/// matrix stored in `a` (column-major, leading dimension `lda`) and `B` is
/// `k x n` (leading dimension `ldb`).
///
/// This is BLAS `dtrsm('L','L','N','U')`, used by HPL to turn the panel
/// rows into `U` after panel factorization.
pub fn dtrsm_llnu(k: usize, n: usize, a: &[f64], lda: usize, b: &mut [f64], ldb: usize) {
    assert!(lda >= k.max(1), "dtrsm_llnu: lda < k");
    assert!(ldb >= k.max(1), "dtrsm_llnu: ldb < k");
    assert!(
        k == 0 || a.len() >= (k - 1) * lda + k,
        "dtrsm_llnu: a too small"
    );
    assert!(
        n == 0 || b.len() >= (n - 1) * ldb + k,
        "dtrsm_llnu: b too small"
    );
    for j in 0..n {
        let col = &mut b[j * ldb..j * ldb + k];
        // Forward substitution with unit diagonal.
        for p in 0..k {
            let xp = col[p];
            if xp == 0.0 {
                continue;
            }
            let lcol = &a[p * lda..p * lda + k];
            for i in p + 1..k {
                col[i] -= xp * lcol[i];
            }
        }
    }
}

/// Triangular solve with multiple right-hand sides:
/// `B := U^{-1} * B` where `U` is the **non-unit upper** triangular `k x k`
/// matrix stored in `a` (column-major, leading dimension `lda`) and `B` is
/// `k x n` (leading dimension `ldb`).
///
/// This is BLAS `dtrsm('L','U','N','N')`, used by blocked back
/// substitution.
pub fn dtrsm_lunn(k: usize, n: usize, a: &[f64], lda: usize, b: &mut [f64], ldb: usize) {
    assert!(lda >= k.max(1), "dtrsm_lunn: lda < k");
    assert!(ldb >= k.max(1), "dtrsm_lunn: ldb < k");
    for j in 0..n {
        let col = &mut b[j * ldb..j * ldb + k];
        for p in (0..k).rev() {
            let diag = a[p + p * lda];
            assert!(diag != 0.0, "dtrsm_lunn: singular diagonal at {p}");
            let xp = col[p] / diag;
            col[p] = xp;
            if xp == 0.0 {
                continue;
            }
            let ucol = &a[p * lda..p * lda + p];
            for i in 0..p {
                col[i] -= xp * ucol[i];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;

    fn dgemm_owned(a: &Matrix, b: &Matrix) -> Matrix {
        let mut c = Matrix::zeros(a.rows(), b.cols());
        let (lda, ldb, ldc) = (a.ld(), b.ld(), c.ld());
        dgemm(
            Trans::No,
            a.rows(),
            b.cols(),
            a.cols(),
            1.0,
            a.as_slice(),
            lda,
            b.as_slice(),
            ldb,
            0.0,
            c.as_mut_slice(),
            ldc,
        );
        c
    }

    #[test]
    fn dgemm_matches_reference_on_odd_sizes() {
        for &(m, n, k) in &[
            (1, 1, 1),
            (4, 4, 4),
            (5, 7, 3),
            (17, 13, 9),
            (64, 64, 64),
            (33, 65, 129),
        ] {
            let a = Matrix::from_fn(m, k, |i, j| ((i * 31 + j * 17) % 13) as f64 - 6.0);
            let b = Matrix::from_fn(k, n, |i, j| ((i * 7 + j * 3) % 11) as f64 - 5.0);
            let c = dgemm_owned(&a, &b);
            let r = a.matmul_ref(&b);
            assert!(
                c.max_abs_diff(&r) < 1e-10,
                "dgemm mismatch at ({m},{n},{k}): {}",
                c.max_abs_diff(&r)
            );
        }
    }

    #[test]
    fn dgemm_respects_alpha_beta() {
        let a = Matrix::from_fn(3, 3, |i, j| (i + j) as f64);
        let b = Matrix::identity(3);
        let mut c = Matrix::from_fn(3, 3, |_, _| 1.0);
        let (lda, ldb, ldc) = (a.ld(), b.ld(), c.ld());
        dgemm(
            Trans::No,
            3,
            3,
            3,
            2.0,
            a.as_slice(),
            lda,
            b.as_slice(),
            ldb,
            3.0,
            c.as_mut_slice(),
            ldc,
        );
        // C = 2*A + 3*ones
        let expect = Matrix::from_fn(3, 3, |i, j| 2.0 * (i + j) as f64 + 3.0);
        assert!(c.max_abs_diff(&expect) < 1e-12);
    }

    #[test]
    fn dgemm_beta_zero_overwrites_nan() {
        // beta = 0 must overwrite even NaN garbage in C.
        let a = Matrix::identity(2);
        let b = Matrix::identity(2);
        let mut c = Matrix::from_fn(2, 2, |_, _| f64::NAN);
        let ldc = c.ld();
        dgemm(
            Trans::No,
            2,
            2,
            2,
            1.0,
            a.as_slice(),
            2,
            b.as_slice(),
            2,
            0.0,
            c.as_mut_slice(),
            ldc,
        );
        assert!(c.max_abs_diff(&Matrix::identity(2)) < 1e-15);
    }

    #[test]
    fn dgemm_transposed_a() {
        let a = Matrix::from_fn(4, 6, |i, j| (i * 6 + j) as f64 * 0.1); // stored 4x6, used as 6x4
        let b = Matrix::from_fn(4, 3, |i, j| (i + 2 * j) as f64);
        let mut c = Matrix::zeros(6, 3);
        let ldc = c.ld();
        dgemm(
            Trans::Yes,
            6,
            3,
            4,
            1.0,
            a.as_slice(),
            a.ld(),
            b.as_slice(),
            b.ld(),
            0.0,
            c.as_mut_slice(),
            ldc,
        );
        // reference: build A^T explicitly
        let at = Matrix::from_fn(6, 4, |i, j| a[(j, i)]);
        let r = at.matmul_ref(&b);
        assert!(c.max_abs_diff(&r) < 1e-12);
    }

    #[test]
    fn dgemm_with_submatrix_leading_dims() {
        // Operate on the top-left 3x3 of 5x5 buffers (lda=5).
        let big_a = Matrix::from_fn(5, 5, |i, j| (i * 5 + j) as f64);
        let big_b = Matrix::identity(5);
        let mut big_c = Matrix::zeros(5, 5);
        dgemm(
            Trans::No,
            3,
            3,
            3,
            1.0,
            big_a.as_slice(),
            5,
            big_b.as_slice(),
            5,
            0.0,
            big_c.as_mut_slice(),
            5,
        );
        for j in 0..3 {
            for i in 0..3 {
                assert_eq!(big_c[(i, j)], big_a[(i, j)]);
            }
        }
        // untouched outside the 3x3 block
        assert_eq!(big_c[(4, 4)], 0.0);
        assert_eq!(big_c[(3, 0)], 0.0);
    }

    #[test]
    fn dtrsm_llnu_inverts_unit_lower() {
        let k = 8;
        let l = Matrix::from_fn(k, k, |i, j| {
            if i == j {
                1.0
            } else if i > j {
                0.1 * (i + j + 1) as f64
            } else {
                0.0
            }
        });
        let x_true = Matrix::from_fn(k, 3, |i, j| (i * 3 + j) as f64 * 0.5 - 2.0);
        let mut b = l.matmul_ref(&x_true);
        let ldb = b.ld();
        dtrsm_llnu(k, 3, l.as_slice(), l.ld(), b.as_mut_slice(), ldb);
        assert!(b.max_abs_diff(&x_true) < 1e-10);
    }

    #[test]
    fn dtrsm_lunn_inverts_upper() {
        let k = 6;
        let u = Matrix::from_fn(k, k, |i, j| {
            if i == j {
                2.0 + i as f64
            } else if i < j {
                ((i + j) % 3) as f64 - 1.0
            } else {
                0.0
            }
        });
        let x_true = Matrix::from_fn(k, 2, |i, j| (i as f64 - j as f64) * 0.3);
        let mut b = u.matmul_ref(&x_true);
        let ldb = b.ld();
        dtrsm_lunn(k, 2, u.as_slice(), u.ld(), b.as_mut_slice(), ldb);
        assert!(b.max_abs_diff(&x_true) < 1e-10);
    }

    #[test]
    #[should_panic]
    fn dtrsm_lunn_panics_on_singular() {
        let mut u = Matrix::identity(2);
        u[(1, 1)] = 0.0;
        let mut b = vec![1.0, 1.0];
        dtrsm_lunn(2, 1, u.as_slice(), 2, &mut b, 2);
    }
}
