//! Deterministic, coordinate-addressable matrix generator.
//!
//! HPL fills its coefficient matrix with pseudo-random numbers from a fixed
//! seed, and the SKT-HPL restart path relies on the fact that the matrix can
//! be regenerated identically after a failure ("With the same configure
//! file, matrix A and b are always the same since the HPL test uses a fixed
//! random seed", §5.2 of the paper).
//!
//! Real HPL uses a linear-congruential stream indexed by global element
//! order. For a distributed generator it is far more convenient for entry
//! `(i, j)` to be a *pure function* of `(seed, i, j)` — every rank can then
//! fill its local block-cyclic shard without generating (or skipping) the
//! whole stream. We hash the coordinates with SplitMix64, which gives
//! white-noise-quality output and perfect reproducibility.

/// Stateless generator: `entry(i, j)` is a pure function of the seed and
/// the global coordinates.
#[derive(Clone, Copy, Debug)]
pub struct MatGen {
    seed: u64,
}

#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl MatGen {
    /// Create a generator for a given seed.
    pub fn new(seed: u64) -> Self {
        MatGen { seed }
    }

    /// The seed this generator was built from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Raw 64-bit hash for coordinate `(i, j)`.
    #[inline]
    pub fn raw(&self, i: u64, j: u64) -> u64 {
        // Mix the coordinates through two rounds so that (i, j) and (j, i)
        // diverge and neighbouring indices decorrelate.
        let a = splitmix64(self.seed ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        splitmix64(a ^ j.wrapping_mul(0xC2B2_AE3D_27D4_EB4F))
    }

    /// Matrix entry in `[-0.5, 0.5)`, HPL's distribution.
    #[inline]
    pub fn entry(&self, i: u64, j: u64) -> f64 {
        // 53 random mantissa bits -> uniform in [0, 1), then centre.
        let bits = self.raw(i, j) >> 11;
        (bits as f64) * (1.0 / (1u64 << 53) as f64) - 0.5
    }

    /// Right-hand-side entry `b[i]`; by convention column `u64::MAX`.
    #[inline]
    pub fn rhs(&self, i: u64) -> f64 {
        self.entry(i, u64::MAX)
    }

    /// Fill a column-major `rows x cols` local block whose top-left global
    /// coordinate is `(row0, col0)`, writing into `buf` with leading
    /// dimension `ld`.
    pub fn fill_block(
        &self,
        buf: &mut [f64],
        ld: usize,
        rows: usize,
        cols: usize,
        row0: u64,
        col0: u64,
    ) {
        assert!(ld >= rows, "fill_block: ld < rows");
        assert!(
            buf.len() >= ld * cols.max(1) - (ld - rows),
            "fill_block: buffer too small"
        );
        for j in 0..cols {
            let col = &mut buf[j * ld..j * ld + rows];
            for (i, v) in col.iter_mut().enumerate() {
                *v = self.entry(row0 + i as u64, col0 + j as u64);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entries_are_reproducible() {
        let g = MatGen::new(1234);
        assert_eq!(g.entry(3, 7), MatGen::new(1234).entry(3, 7));
        assert_ne!(g.entry(3, 7), g.entry(7, 3), "should not be symmetric");
    }

    #[test]
    fn entries_are_in_range() {
        let g = MatGen::new(99);
        for i in 0..100 {
            for j in 0..100 {
                let v = g.entry(i, j);
                assert!((-0.5..0.5).contains(&v), "entry {v} out of range");
            }
        }
    }

    #[test]
    fn entries_have_roughly_zero_mean() {
        let g = MatGen::new(7);
        let n = 200u64;
        let mut sum = 0.0;
        for i in 0..n {
            for j in 0..n {
                sum += g.entry(i, j);
            }
        }
        let mean = sum / (n * n) as f64;
        assert!(mean.abs() < 0.01, "mean {mean} too far from 0");
    }

    #[test]
    fn fill_block_matches_pointwise_entries() {
        let g = MatGen::new(5);
        let (rows, cols, ld) = (4, 3, 6);
        let mut buf = vec![0.0; ld * cols];
        g.fill_block(&mut buf, ld, rows, cols, 10, 20);
        for j in 0..cols {
            for i in 0..rows {
                assert_eq!(buf[i + j * ld], g.entry(10 + i as u64, 20 + j as u64));
            }
        }
        // padding rows untouched
        assert_eq!(buf[rows], 0.0);
    }

    #[test]
    fn rhs_differs_from_matrix_entries() {
        let g = MatGen::new(5);
        assert_ne!(g.rhs(0), g.entry(0, 0));
    }

    #[test]
    fn different_seeds_decorrelate() {
        let a = MatGen::new(1);
        let b = MatGen::new(2);
        let same = (0..1000)
            .filter(|&i| a.entry(i, 0) == b.entry(i, 0))
            .count();
        assert_eq!(same, 0);
    }
}
