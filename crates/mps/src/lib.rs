#![warn(unused)]
//! # skt-mps
//!
//! A thread-based message-passing substrate with MPI semantics — the
//! runtime under the Self-Checkpoint / SKT-HPL reproduction.
//!
//! The paper's protocol needs exactly these properties of MPI:
//!
//! * ranks with point-to-point `send`/`recv` and tags,
//! * collectives — in particular `MPI_Reduce` with `BXOR`/`SUM` operators,
//!   which is how checksums are built (§2.2),
//! * sub-communicators (`MPI_Comm_split`) for checkpoint groups and the
//!   HPL process grid,
//! * the failure model of mainstream MPI: **a node failure aborts the
//!   whole job** (§1), after which a daemon restarts it.
//!
//! Ranks here are OS threads placed on virtual [`skt_cluster`] nodes by a
//! [`Ranklist`](skt_cluster::Ranklist); every blocking operation polls the
//! cluster's abort flag, so a node death anywhere unblocks every rank with
//! [`Fault::JobAborted`](skt_cluster::Fault). Real Rust MPI bindings are
//! immature and a laptop has no 24,576 cores anyway; thread ranks preserve
//! the semantics while staying deterministic and testable.

pub mod comm;
pub mod payload;
pub mod world;

pub use comm::Comm;
pub use payload::{Payload, ReduceOp};
pub use world::{run_local, run_on_cluster, Ctx};

pub use skt_cluster::Fault;
