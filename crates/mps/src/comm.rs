//! Communicators: point-to-point messaging, `MPI_Comm_split`, and
//! tree-based collectives (`bcast`, `reduce`, `allreduce`, `barrier`,
//! `gather`, `allgather`, `scatter`).

use crate::payload::{Payload, ReduceOp};
use crate::world::Ctx;
use skt_cluster::{Event, Fault};

/// A message in flight.
#[derive(Debug)]
pub struct Envelope {
    /// Communicator id the message belongs to.
    pub(crate) comm: u64,
    /// Sender's rank *within that communicator*.
    pub(crate) src: usize,
    /// Message tag (user tags < 2^32; internal collective tags above).
    pub(crate) tag: u64,
    /// The body.
    pub(crate) payload: Payload,
}

/// Shape of a communicator: used by tests to assert split results.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CommShape {
    /// Communicator id.
    pub id: u64,
    /// World ranks of the members, in comm-rank order.
    pub ranks: Vec<usize>,
    /// This rank's position.
    pub me: usize,
}

const USER_TAG_LIMIT: u64 = 1 << 32;

#[inline]
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A communicator bound to this rank's [`Ctx`].
///
/// All members of a communicator must issue collective calls on it in the
/// same program order (standard MPI requirement); internal tags are drawn
/// from a per-communicator sequence so concurrent collectives on
/// *different* communicators do not collide.
pub struct Comm<'c> {
    ctx: &'c Ctx,
    id: u64,
    ranks: Vec<usize>,
    me: usize,
}

impl Clone for Comm<'_> {
    /// A cloned communicator is the *same* communicator (same id): the
    /// collective tag sequence lives in the rank's [`Ctx`] keyed by the
    /// id, so collectives issued through either handle stay ordered.
    fn clone(&self) -> Self {
        Comm {
            ctx: self.ctx,
            id: self.id,
            ranks: self.ranks.clone(),
            me: self.me,
        }
    }
}

impl<'c> Comm<'c> {
    /// The world communicator of a rank.
    pub(crate) fn world(ctx: &'c Ctx) -> Self {
        Comm {
            ctx,
            id: 0,
            ranks: (0..ctx.nranks()).collect(),
            me: ctx.world_rank(),
        }
    }

    /// This rank's rank within the communicator.
    pub fn rank(&self) -> usize {
        self.me
    }

    /// Number of ranks in the communicator.
    pub fn size(&self) -> usize {
        self.ranks.len()
    }

    /// World rank of communicator rank `r`.
    pub fn world_rank_of(&self, r: usize) -> usize {
        self.ranks[r]
    }

    /// World ranks of all members, in comm-rank order.
    pub fn ranks(&self) -> &[usize] {
        &self.ranks
    }

    /// The communicator id (diagnostics).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Shape snapshot (for tests).
    pub fn shape(&self) -> CommShape {
        CommShape {
            id: self.id,
            ranks: self.ranks.clone(),
            me: self.me,
        }
    }

    /// The context this communicator is bound to.
    pub fn ctx(&self) -> &'c Ctx {
        self.ctx
    }

    /// Point-to-point send to comm rank `dst` with a user `tag`
    /// (< 2^32).
    pub fn send(&self, dst: usize, tag: u64, payload: Payload) -> Result<(), Fault> {
        assert!(tag < USER_TAG_LIMIT, "user tag {tag} out of range");
        self.send_tagged(dst, tag, payload)
    }

    fn send_tagged(&self, dst: usize, tag: u64, payload: Payload) -> Result<(), Fault> {
        let env = Envelope {
            comm: self.id,
            src: self.me,
            tag,
            payload,
        };
        self.ctx.raw_send(self.ranks[dst], env)
    }

    /// Blocking receive from comm rank `src` with user `tag`.
    pub fn recv(&self, src: usize, tag: u64) -> Result<Payload, Fault> {
        assert!(tag < USER_TAG_LIMIT, "user tag {tag} out of range");
        self.recv_tagged(src, tag)
    }

    fn recv_tagged(&self, src: usize, tag: u64) -> Result<Payload, Fault> {
        let id = self.id;
        self.ctx
            .recv_match(|e| e.comm == id && e.src == src && e.tag == tag)
            .map(|e| e.payload)
    }

    /// Blocking receive of any message with user `tag`; returns
    /// `(src_comm_rank, payload)`.
    pub fn recv_any(&self, tag: u64) -> Result<(usize, Payload), Fault> {
        assert!(tag < USER_TAG_LIMIT, "user tag {tag} out of range");
        let id = self.id;
        self.ctx
            .recv_match(|e| e.comm == id && e.tag == tag)
            .map(|e| (e.src, e.payload))
    }

    /// Allocate `k` consecutive internal collective tags.
    fn alloc_tags(&self, k: u64) -> u64 {
        let seq = self.ctx.alloc_coll_seq(self.id, k);
        USER_TAG_LIMIT + seq
    }

    /// Time a collective body and emit a [`Event::Collective`] when an
    /// observer is listening; free (one atomic load) otherwise.
    fn observed<T>(
        &self,
        op: &'static str,
        bytes: usize,
        body: impl FnOnce() -> Result<T, Fault>,
    ) -> Result<T, Fault> {
        let bus = self.ctx.cluster().events();
        if !bus.is_active() {
            return body();
        }
        let t = self.ctx.stopwatch();
        let out = body()?;
        bus.emit(Event::Collective {
            op,
            bytes: bytes as u64,
            elapsed: t.elapsed(),
        });
        Ok(out)
    }

    /// Broadcast from comm rank `root` over a binomial tree. Every rank
    /// passes its (cheap, possibly empty) `payload`; non-roots get the
    /// root's payload back.
    pub fn bcast(&self, root: usize, payload: Payload) -> Result<Payload, Fault> {
        self.observed("bcast", payload.size_bytes(), || {
            self.bcast_inner(root, payload)
        })
    }

    fn bcast_inner(&self, root: usize, payload: Payload) -> Result<Payload, Fault> {
        let size = self.size();
        let tag = self.alloc_tags(1);
        if size == 1 {
            return Ok(payload);
        }
        let vr = (self.me + size - root) % size;
        let actual = |v: usize| (v + root) % size;
        let mut data = if self.me == root { Some(payload) } else { None };
        let mut mask = 1usize;
        while mask < size {
            if vr & mask != 0 {
                data = Some(self.recv_tagged(actual(vr - mask), tag)?);
                break;
            }
            mask <<= 1;
        }
        mask >>= 1;
        let data = data.ok_or(Fault::Protocol("bcast: no data at send phase"))?;
        while mask > 0 {
            if vr + mask < size {
                self.send_tagged(actual(vr + mask), tag, data.clone())?;
            }
            mask >>= 1;
        }
        Ok(data)
    }

    /// Reduce to comm rank `root` over a binomial tree; the root gets
    /// `Some(result)`, everyone else `None`. Matches `MPI_Reduce` with the
    /// operators of [`ReduceOp`] — including `Xor` on `U64`, the encoding
    /// primitive of the paper (§2.2).
    pub fn reduce(
        &self,
        op: ReduceOp,
        root: usize,
        payload: Payload,
    ) -> Result<Option<Payload>, Fault> {
        self.observed("reduce", payload.size_bytes(), || {
            self.reduce_inner(op, root, payload)
        })
    }

    fn reduce_inner(
        &self,
        op: ReduceOp,
        root: usize,
        payload: Payload,
    ) -> Result<Option<Payload>, Fault> {
        let size = self.size();
        let tag = self.alloc_tags(1);
        if size == 1 {
            return Ok(Some(payload));
        }
        let vr = (self.me + size - root) % size;
        let actual = |v: usize| (v + root) % size;
        let mut acc = payload;
        let mut mask = 1usize;
        while mask < size {
            if vr & mask == 0 {
                let peer = vr | mask;
                if peer < size {
                    let rhs = self.recv_tagged(actual(peer), tag)?;
                    op.apply(&mut acc, &rhs);
                }
            } else {
                self.send_tagged(actual(vr - mask), tag, acc)?;
                return Ok(None);
            }
            mask <<= 1;
        }
        Ok(Some(acc))
    }

    /// Reduce followed by broadcast of the result.
    pub fn allreduce(&self, op: ReduceOp, payload: Payload) -> Result<Payload, Fault> {
        let reduced = self.reduce(op, 0, payload)?;
        self.bcast(0, reduced.unwrap_or(Payload::Empty))
    }

    /// Synchronize all ranks.
    pub fn barrier(&self) -> Result<(), Fault> {
        self.allreduce(ReduceOp::Sum, Payload::Empty)?;
        Ok(())
    }

    /// Gather everyone's payload at `root`, in comm-rank order.
    pub fn gather(&self, root: usize, payload: Payload) -> Result<Option<Vec<Payload>>, Fault> {
        let size = self.size();
        let tag = self.alloc_tags(1);
        if self.me == root {
            let mut out: Vec<Option<Payload>> = (0..size).map(|_| None).collect();
            out[root] = Some(payload);
            for _ in 0..size - 1 {
                let id = self.id;
                let env = self.ctx.recv_match(|e| e.comm == id && e.tag == tag)?;
                if out[env.src].is_some() {
                    return Err(Fault::Protocol("gather: duplicate contribution"));
                }
                out[env.src] = Some(env.payload);
            }
            assemble_gather(out).map(Some)
        } else {
            self.send_tagged(root, tag, payload)?;
            Ok(None)
        }
    }

    /// Gather everyone's payload at every rank.
    pub fn allgather(&self, payload: Payload) -> Result<Vec<Payload>, Fault> {
        let size = self.size();
        let tags = self.alloc_tags(size as u64); // distribution tags
        match self.gather(0, payload)? {
            Some(all) => {
                for dst in 1..size {
                    for (i, p) in all.iter().enumerate() {
                        self.send_tagged(dst, tags + i as u64, p.clone())?;
                    }
                }
                Ok(all)
            }
            None => {
                let mut all = Vec::with_capacity(size);
                for i in 0..size {
                    all.push(self.recv_tagged(0, tags + i as u64)?);
                }
                Ok(all)
            }
        }
    }

    /// Scatter `parts` (one per rank, at `root`) to the ranks; every rank
    /// gets its own part.
    pub fn scatter(&self, root: usize, parts: Option<Vec<Payload>>) -> Result<Payload, Fault> {
        let size = self.size();
        let tag = self.alloc_tags(1);
        if self.me == root {
            let parts = parts.ok_or(Fault::Protocol("scatter: root must supply parts"))?;
            if parts.len() != size {
                return Err(Fault::Protocol("scatter: need one part per rank"));
            }
            let mut mine = Payload::Empty;
            for (dst, p) in parts.into_iter().enumerate() {
                if dst == root {
                    mine = p;
                } else {
                    self.send_tagged(dst, tag, p)?;
                }
            }
            Ok(mine)
        } else {
            self.recv_tagged(root, tag)
        }
    }

    /// Split into sub-communicators by `color`; members of the same color
    /// form a child comm ordered by `(key, world_rank)` — the semantics of
    /// `MPI_Comm_split`.
    pub fn split(&self, color: u64, key: usize) -> Result<Comm<'c>, Fault> {
        let salt = self.ctx.next_split_salt();
        let mine = Payload::I64(vec![color as i64, key as i64]);
        let all = self.allgather(mine)?;
        let mut members: Vec<(usize, usize)> = Vec::new(); // (key, world_rank)
        for (r, p) in all.iter().enumerate() {
            let v = match p {
                Payload::I64(v) => v,
                _ => return Err(Fault::Protocol("split: unexpected payload type")),
            };
            if v[0] as u64 == color {
                members.push((v[1] as usize, self.ranks[r]));
            }
        }
        members.sort_unstable();
        let ranks: Vec<usize> = members.iter().map(|(_, wr)| *wr).collect();
        let my_world = self.ranks[self.me];
        let me = ranks
            .iter()
            .position(|&r| r == my_world)
            .ok_or(Fault::Protocol(
                "split: calling rank missing from its group",
            ))?;
        let id = mix(self.id ^ mix(salt) ^ mix(color.wrapping_mul(0x9E37_79B9)));
        Ok(Comm {
            ctx: self.ctx,
            id,
            ranks,
            me,
        })
    }
}

/// Final assembly of a gather at the root: every slot must be filled.
///
/// The live receive loop cannot leave a hole (`size - 1` distinct,
/// non-duplicate contributions fill every non-root slot by pigeonhole),
/// but the invariant is kept as a typed fault so a refactor of the loop
/// can never silently hand the caller a partial vector.
fn assemble_gather(slots: Vec<Option<Payload>>) -> Result<Vec<Payload>, Fault> {
    slots
        .into_iter()
        .map(|p| p.ok_or(Fault::Protocol("gather: missing rank")))
        .collect()
}

impl Ctx {
    fn alloc_coll_seq(&self, comm_id: u64, k: u64) -> u64 {
        // per-(ctx, comm) sequence; all members advance identically
        // because collectives are issued in the same order.
        let mut map = self.coll_seqs.borrow_mut();
        let seq = map.entry(comm_id).or_insert(0);
        let out = *seq;
        *seq += k;
        out
    }

    fn next_split_salt(&self) -> u64 {
        let s = self.next_comm_salt.get();
        self.next_comm_salt.set(s + 1);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::run_local;

    #[test]
    fn bcast_from_each_root() {
        for root in 0..5 {
            let out = run_local(5, move |ctx| {
                let w = ctx.world();
                let payload = if w.rank() == root {
                    Payload::F64(vec![root as f64 * 1.5])
                } else {
                    Payload::Empty
                };
                Ok(w.bcast(root, payload)?.into_f64()[0])
            })
            .unwrap();
            assert_eq!(out, vec![root as f64 * 1.5; 5], "root {root}");
        }
    }

    #[test]
    fn reduce_sum_collects_everything() {
        let out = run_local(7, |ctx| {
            let w = ctx.world();
            let r = w.reduce(
                ReduceOp::Sum,
                2,
                Payload::F64(vec![ctx.world_rank() as f64]),
            )?;
            Ok(r.map(|p| p.into_f64()[0]))
        })
        .unwrap();
        for (rank, v) in out.iter().enumerate() {
            if rank == 2 {
                assert_eq!(*v, Some(21.0)); // 0+1+...+6
            } else {
                assert_eq!(*v, None);
            }
        }
    }

    #[test]
    fn reduce_xor_matches_sequential_xor() {
        let out = run_local(6, |ctx| {
            let w = ctx.world();
            let word = 0x1111u64 << ctx.world_rank();
            let r = w.reduce(ReduceOp::Xor, 0, Payload::U64(vec![word]))?;
            Ok(r.map(|p| p.into_u64()[0]))
        })
        .unwrap();
        let expect = (0..6).fold(0u64, |acc, r| acc ^ (0x1111u64 << r));
        assert_eq!(out[0], Some(expect));
    }

    #[test]
    fn allreduce_gives_everyone_the_result() {
        let out = run_local(4, |ctx| {
            let w = ctx.world();
            let r = w.allreduce(
                ReduceOp::Max,
                Payload::I64(vec![(ctx.world_rank() as i64) * 7]),
            )?;
            Ok(r.into_i64()[0])
        })
        .unwrap();
        assert_eq!(out, vec![21; 4]);
    }

    #[test]
    fn barrier_completes() {
        // nothing to assert beyond termination across odd sizes
        for n in [1, 2, 3, 8] {
            run_local(n, |ctx| {
                for _ in 0..3 {
                    ctx.world().barrier()?;
                }
                Ok(())
            })
            .unwrap();
        }
    }

    #[test]
    fn gather_orders_by_rank() {
        let out = run_local(4, |ctx| {
            let w = ctx.world();
            let r = w.gather(1, Payload::I64(vec![ctx.world_rank() as i64 * 3]))?;
            Ok(r.map(|v| v.into_iter().map(|p| p.into_i64()[0]).collect::<Vec<_>>()))
        })
        .unwrap();
        assert_eq!(out[1], Some(vec![0, 3, 6, 9]));
        assert_eq!(out[0], None);
    }

    #[test]
    fn allgather_everyone_sees_all() {
        let out = run_local(5, |ctx| {
            let w = ctx.world();
            let v = w.allgather(Payload::I64(vec![ctx.world_rank() as i64]))?;
            Ok(v.into_iter().map(|p| p.into_i64()[0]).collect::<Vec<_>>())
        })
        .unwrap();
        for v in out {
            assert_eq!(v, vec![0, 1, 2, 3, 4]);
        }
    }

    #[test]
    fn scatter_delivers_parts() {
        let out = run_local(3, |ctx| {
            let w = ctx.world();
            let parts = if w.rank() == 0 {
                Some((0..3).map(|i| Payload::F64(vec![i as f64 * 2.0])).collect())
            } else {
                None
            };
            Ok(w.scatter(0, parts)?.into_f64()[0])
        })
        .unwrap();
        assert_eq!(out, vec![0.0, 2.0, 4.0]);
    }

    #[test]
    fn split_by_parity() {
        let out = run_local(6, |ctx| {
            let w = ctx.world();
            let color = (ctx.world_rank() % 2) as u64;
            let sub = w.split(color, ctx.world_rank())?;
            // sum within each subgroup
            let s = sub.allreduce(ReduceOp::Sum, Payload::I64(vec![ctx.world_rank() as i64]))?;
            Ok((sub.size(), sub.rank(), s.into_i64()[0]))
        })
        .unwrap();
        // evens: 0+2+4=6; odds: 1+3+5=9
        assert_eq!(out[0], (3, 0, 6));
        assert_eq!(out[1], (3, 0, 9));
        assert_eq!(out[4], (3, 2, 6));
        assert_eq!(out[5], (3, 2, 9));
    }

    #[test]
    fn split_key_reorders_ranks() {
        let out = run_local(4, |ctx| {
            let w = ctx.world();
            // reverse order via key
            let sub = w.split(0, 100 - ctx.world_rank())?;
            Ok((sub.rank(), sub.ranks().to_vec()))
        })
        .unwrap();
        assert_eq!(out[0].1, vec![3, 2, 1, 0]);
        assert_eq!(out[3].0, 0, "highest world rank gets lowest key");
    }

    #[test]
    fn nested_splits_do_not_collide() {
        let out = run_local(8, |ctx| {
            let w = ctx.world();
            let row = w.split((ctx.world_rank() / 4) as u64, ctx.world_rank())?;
            let col = w.split((ctx.world_rank() % 4) as u64, ctx.world_rank())?;
            let rs = row
                .allreduce(ReduceOp::Sum, Payload::I64(vec![1]))?
                .into_i64()[0];
            let cs = col
                .allreduce(ReduceOp::Sum, Payload::I64(vec![1]))?
                .into_i64()[0];
            Ok((rs, cs))
        })
        .unwrap();
        assert!(out.iter().all(|&(r, c)| r == 4 && c == 2));
    }

    #[test]
    fn concurrent_collectives_on_different_comms() {
        // bcast on a subgroup while the other subgroup reduces
        let out = run_local(4, |ctx| {
            let w = ctx.world();
            let color = (ctx.world_rank() / 2) as u64;
            let sub = w.split(color, ctx.world_rank())?;
            if color == 0 {
                let v = sub.bcast(0, Payload::I64(vec![42]))?;
                Ok(v.into_i64()[0])
            } else {
                let v = sub.allreduce(ReduceOp::Sum, Payload::I64(vec![10]))?;
                Ok(v.into_i64()[0])
            }
        })
        .unwrap();
        assert_eq!(out, vec![42, 42, 20, 20]);
    }

    #[test]
    fn scatter_misuse_is_a_typed_fault_not_a_panic() {
        let out = run_local(2, |ctx| {
            let w = ctx.world();
            if w.rank() == 0 {
                // root fails to supply parts: must surface as a Fault value
                match w.scatter(0, None) {
                    Err(Fault::Protocol(msg)) => Ok(msg.contains("root must supply")),
                    other => panic!("expected protocol fault, got {other:?}"),
                }
            } else {
                Ok(true) // non-root never enters the failed collective
            }
        })
        .unwrap();
        assert!(out.into_iter().all(|b| b));
    }

    #[test]
    fn collectives_emit_events_when_observed() {
        use skt_cluster::Recorder;
        use std::sync::Arc;
        let rec = Arc::new(Recorder::new());
        let rec2 = Arc::clone(&rec);
        run_local(4, move |ctx| {
            if ctx.world_rank() == 0 {
                ctx.cluster().events().subscribe(Arc::clone(&rec2) as _);
            }
            let w = ctx.world();
            w.barrier()?; // ensure subscription ordered before the timed op
            w.allreduce(ReduceOp::Sum, Payload::F64(vec![1.0; 8]))?;
            Ok(())
        })
        .unwrap();
        assert!(
            rec.count(|e| matches!(
                e,
                Event::Collective {
                    op: "reduce",
                    bytes: 64,
                    ..
                }
            )) >= 1,
            "allreduce must surface reduce events: {:?}",
            rec.events()
        );
        assert!(rec.count(|e| matches!(e, Event::Collective { op: "bcast", .. })) >= 1);
    }

    #[test]
    fn gather_duplicate_contribution_is_a_typed_fault() {
        let out = run_local(3, |ctx| {
            let w = ctx.world();
            // The first collective on the world comm draws internal tag
            // `USER_TAG_LIMIT + 0`; rank 1 forges a second contribution
            // on that tag while rank 2 stays silent, so the root sees
            // rank 1 twice within its expected `size - 1` receives.
            let tag = USER_TAG_LIMIT;
            match ctx.world_rank() {
                0 => match w.gather(0, Payload::Empty) {
                    Err(Fault::Protocol(msg)) => Ok(msg.contains("duplicate contribution")),
                    other => panic!("expected a duplicate-contribution fault, got {other:?}"),
                },
                1 => {
                    w.send_tagged(0, tag, Payload::I64(vec![1]))?;
                    w.send_tagged(0, tag, Payload::I64(vec![1]))?;
                    Ok(true)
                }
                _ => Ok(true),
            }
        })
        .unwrap();
        assert!(out.into_iter().all(|b| b));
    }

    #[test]
    fn gather_assembly_reports_a_missing_rank() {
        let slots = vec![Some(Payload::Empty), None, Some(Payload::Empty)];
        match assemble_gather(slots) {
            Err(Fault::Protocol(msg)) => assert!(msg.contains("missing rank")),
            other => panic!("expected a missing-rank fault, got {other:?}"),
        }
    }

    #[test]
    fn collectives_on_a_dead_peer_fail_fast_with_the_culprit_named() {
        let t0 = std::time::Instant::now();
        let out = run_local(3, |ctx| {
            if ctx.world_rank() == 2 {
                // die unannounced; the survivors are (or soon will be)
                // parked inside the barrier waiting on this rank
                ctx.cluster().kill_node(ctx.node());
            }
            Ok(ctx.world().barrier())
        })
        .unwrap();
        for (rank, r) in out.iter().enumerate() {
            assert_eq!(
                *r,
                Err(Fault::NodeDead(2)),
                "rank {rank} must learn the culprit promptly, not park forever"
            );
        }
        assert!(
            t0.elapsed() < std::time::Duration::from_secs(5),
            "abort must propagate within the poll interval, not hang"
        );
    }

    #[test]
    #[should_panic(expected = "user tag")]
    fn user_tags_above_limit_rejected() {
        let _ = run_local(2, |ctx| {
            let w = ctx.world();
            w.send(0, 1 << 33, Payload::Empty)?;
            Ok(())
        });
    }
}
