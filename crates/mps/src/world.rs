//! World launch: spawn one thread per rank on a virtual cluster and run a
//! rank function to completion or whole-job abort.

use crate::comm::{Comm, Envelope};
use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};
use skt_cluster::{Cluster, ClusterConfig, Fault, NodeId, Ranklist, Runtime, YieldOutcome};
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// How long a blocking receive waits between abort-flag polls. Short
/// enough that a job abort propagates promptly, long enough not to burn
/// CPU.
pub(crate) const POLL: Duration = Duration::from_micros(500);

/// Per-rank execution context. One per rank thread; not shared.
pub struct Ctx {
    world_rank: usize,
    nranks: usize,
    node: NodeId,
    /// The node's fencing generation captured at launch. If the cluster's
    /// generation for this node moves past it mid-job, this rank is a
    /// zombie: every send and probe returns [`Fault::Fenced`].
    generation: u64,
    cluster: Arc<Cluster>,
    ranklist: Ranklist,
    rx: Receiver<Envelope>,
    txs: Arc<Vec<Sender<Envelope>>>,
    pub(crate) pending: RefCell<Vec<Envelope>>,
    fail_counts: RefCell<HashMap<String, u64>>,
    pub(crate) next_comm_salt: Cell<u64>,
    pub(crate) coll_seqs: RefCell<HashMap<u64, u64>>,
}

impl Ctx {
    /// This rank's world rank.
    pub fn world_rank(&self) -> usize {
        self.world_rank
    }

    /// Total ranks in the world.
    pub fn nranks(&self) -> usize {
        self.nranks
    }

    /// The node hosting this rank.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The cluster this job runs on.
    pub fn cluster(&self) -> &Arc<Cluster> {
        &self.cluster
    }

    /// The rank placement of this job.
    pub fn ranklist(&self) -> &Ranklist {
        &self.ranklist
    }

    /// This node's shared-memory store (survives job abort).
    pub fn shm(&self) -> &skt_cluster::ShmStore {
        self.cluster.shm(self.node)
    }

    /// Ranks sharing this rank's node (for device/port contention).
    pub fn node_sharers(&self) -> usize {
        self.ranklist.sharers_of(self.world_rank)
    }

    /// The world communicator.
    pub fn world(&self) -> Comm<'_> {
        Comm::world(self)
    }

    /// A [`Stopwatch`](skt_cluster::Stopwatch) on the cluster's clock —
    /// what rank code uses instead of `Instant::now()` so measured
    /// durations are reproducible under simulation.
    pub fn stopwatch(&self) -> skt_cluster::Stopwatch {
        self.cluster.stopwatch()
    }

    /// Kill-capable simulation yield point. Under the real runtime this is
    /// free; under [`SimRuntime`](skt_cluster::SimRuntime) the rank gives
    /// up its time slice here, and an armed yield kill can choose this
    /// exact point to take the node down — same death path as an armed
    /// [`FailurePlan`](skt_cluster::FailurePlan) firing at a probe.
    pub(crate) fn sim_yield(&self, label: &str) -> Result<(), Fault> {
        if self.cluster.runtime().yield_now(label) == YieldOutcome::Killed {
            self.cluster.kill_node(self.node);
            return Err(Fault::NodeDead(self.node));
        }
        Ok(())
    }

    /// Named failure probe: increments this rank's counter for `label`
    /// and consults the cluster's armed plans. Returns `Err` if this node
    /// just died or the job is aborted. Doubles as a simulation yield
    /// point, so every probe is also a schedulable (and killable) instant
    /// — and, when a hang plan fired here, the point where the node's
    /// ranks stop making progress.
    pub fn failpoint(&self, label: &str) -> Result<(), Fault> {
        self.sim_yield(label)?;
        self.check_fence()?;
        let count = {
            let mut counts = self.fail_counts.borrow_mut();
            let c = counts.entry(label.to_string()).or_insert(0);
            *c += 1;
            *c
        };
        match self.cluster.failpoint(self.node, label, count) {
            // The cluster sees only its abort flag; re-attribute the
            // abort to the dead peer so a survivor's probe reports the
            // same culprit as a survivor's blocked receive would.
            Err(Fault::JobAborted) => match self.check_abort() {
                Ok(()) => Err(Fault::JobAborted),
                Err(e) => Err(e),
            },
            Ok(()) => self.hold_if_hung(),
            other => other,
        }
    }

    /// Reject a zombie: `Err(Fault::Fenced)` once this rank's node has
    /// been fenced (or re-generationed) out from under the running job.
    pub fn check_fence(&self) -> Result<(), Fault> {
        let current = self.cluster.node_generation(self.node);
        if current != self.generation || self.cluster.node_fenced(self.node) {
            return Err(Fault::Fenced {
                node: self.node,
                generation: current,
            });
        }
        Ok(())
    }

    /// While this rank's node is hard-hung, hold here: the rank makes no
    /// progress and sends no heartbeats, but still exits promptly on a
    /// job abort, a suspicion verdict against anyone, a fence, or a heal.
    fn hold_if_hung(&self) -> Result<(), Fault> {
        while self.cluster.node_hung(self.node) {
            self.check_abort()?;
            self.check_fence()?;
            match self.cluster.runtime().park_blocked() {
                Some(YieldOutcome::Continue) => {}
                Some(YieldOutcome::Killed) => {
                    self.cluster.kill_node(self.node);
                    return Err(Fault::NodeDead(self.node));
                }
                // real time: the hang is wall-clock; sleep a poll tick
                None => std::thread::sleep(POLL),
            }
        }
        Ok(())
    }

    /// Abort check without a probe (used inside blocking loops).
    ///
    /// Faults are attributed, not just raised: a rank whose own node died
    /// gets `NodeDead(its node)`; a survivor unblocked by the job abort
    /// gets `NodeDead(the failed peer)` when a node failure caused the
    /// abort, and `JobAborted` only for node-less aborts (e.g. a rank
    /// panic). A collective parked on a dead peer therefore returns
    /// promptly with the culprit named instead of a generic abort —
    /// what the recovery daemon keys its detection-and-replace loop on.
    pub fn check_abort(&self) -> Result<(), Fault> {
        if !self.cluster.node_alive(self.node) {
            return Err(Fault::NodeDead(self.node));
        }
        // A suspicion abort names the suspect on every rank, the same way
        // a node-death abort names the dead peer below.
        if let Some(v) = self.cluster.suspected() {
            return Err(Fault::Suspect {
                node: v.node,
                score: v.score,
            });
        }
        if self.cluster.check_abort().is_err() {
            // The culprit is a dead node *currently hosting a rank*:
            // nodes lost in earlier launches stay dead on the cluster but
            // were already replaced out of this job's ranklist.
            let culprit = self
                .cluster
                .dead_nodes()
                .into_iter()
                .find(|&n| (0..self.nranks).any(|r| self.ranklist.node_of(r) == n));
            return Err(match culprit {
                Some(n) => Fault::NodeDead(n),
                None => Fault::JobAborted,
            });
        }
        Ok(())
    }

    pub(crate) fn raw_send(&self, dst_world: usize, env: Envelope) -> Result<(), Fault> {
        self.sim_yield("send")?;
        self.hold_if_hung()?;
        self.check_abort()?;
        // A fenced zombie's messages are rejected at the source: they
        // must never reach a live rank's mailbox.
        self.check_fence()?;
        let bytes = env.payload.size_bytes();
        // Sending to a dead node's mailbox is allowed (the message is
        // simply never consumed) — like a NIC buffering for a dead peer.
        // The abort flag unblocks the sender's future operations.
        self.txs[dst_world]
            .send(env)
            .map_err(|_| Fault::JobAborted)?;
        // Under simulation: charge the modeled transfer to the virtual
        // clock (inflated when this node's link is degraded, feeding the
        // sender's suspicion score) and wake any peer parked in a receive.
        self.cluster.charge_send_from(self.node, bytes);
        self.cluster.runtime().notify();
        Ok(())
    }

    /// Receive the next envelope matching `pred`, buffering mismatches.
    pub(crate) fn recv_match(
        &self,
        mut pred: impl FnMut(&Envelope) -> bool,
    ) -> Result<Envelope, Fault> {
        // Check the out-of-order buffer first.
        {
            let mut pending = self.pending.borrow_mut();
            if let Some(pos) = pending.iter().position(&mut pred) {
                return Ok(pending.remove(pos));
            }
        }
        loop {
            self.hold_if_hung()?;
            self.check_abort()?;
            // A blocked receiver is the watchdog for gray peers: evaluate
            // suspicion here so a collective parked on a hung or straggling
            // node returns `Fault::Suspect` instead of waiting forever.
            self.cluster.check_gray(self.node)?;
            // Drain everything already delivered without blocking.
            loop {
                match self.rx.try_recv() {
                    Ok(env) => {
                        if pred(&env) {
                            return Ok(env);
                        }
                        self.pending.borrow_mut().push(env);
                    }
                    Err(TryRecvError::Empty) => break,
                    Err(TryRecvError::Disconnected) => return Err(Fault::JobAborted),
                }
            }
            // Nothing matched. Under simulation, park until a send or an
            // abort wakes us (a timed poll would be a hidden wall-clock
            // dependency); in real time, fall back to the timed poll.
            match self.cluster.runtime().park_blocked() {
                Some(YieldOutcome::Continue) => continue,
                Some(YieldOutcome::Killed) => {
                    self.cluster.kill_node(self.node);
                    return Err(Fault::NodeDead(self.node));
                }
                None if self.cluster.runtime().is_sim() => {
                    // A sim-world thread that is not a registered task
                    // (service plumbing driving a rank body directly):
                    // waiting out the poll on the wall clock would leave
                    // the virtual clock frozen, making "timeouts" depend
                    // on host speed. Charge the poll to the virtual clock
                    // instead and re-check.
                    self.cluster.runtime().advance(POLL);
                    continue;
                }
                None => match self.rx.recv_timeout(POLL) {
                    Ok(env) => {
                        if pred(&env) {
                            return Ok(env);
                        }
                        self.pending.borrow_mut().push(env);
                    }
                    Err(crossbeam::channel::RecvTimeoutError::Timeout) => continue,
                    Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                        return Err(Fault::JobAborted)
                    }
                },
            }
        }
    }
}

/// Launch `ranklist.len()` ranks on `cluster` and run `f` in each. Returns
/// the per-rank results in rank order, or the first fault if any rank
/// failed (MPI semantics: one failure fails the job).
///
/// Rank threads are real OS threads, so rank bodies run genuinely in
/// parallel (the HPL update is compute-bound in each rank).
pub fn run_on_cluster<T, F>(
    cluster: Arc<Cluster>,
    ranklist: &Ranklist,
    f: F,
) -> Result<Vec<T>, Fault>
where
    T: Send,
    F: Fn(&Ctx) -> Result<T, Fault> + Send + Sync,
{
    let n = ranklist.len();
    for r in 0..n {
        assert!(
            cluster.node_alive(ranklist.node_of(r)),
            "rank {r} placed on dead node {}; repair the ranklist first",
            ranklist.node_of(r)
        );
        assert!(
            !cluster.node_fenced(ranklist.node_of(r)),
            "rank {r} placed on fenced node {}; repair the ranklist first",
            ranklist.node_of(r)
        );
    }
    let (txs, rxs): (Vec<_>, Vec<_>) = (0..n).map(|_| unbounded::<Envelope>()).unzip();
    let txs = Arc::new(txs);
    let mut results: Vec<Option<Result<T, Fault>>> = (0..n).map(|_| None).collect();
    let nodes: Vec<NodeId> = (0..n).map(|r| ranklist.node_of(r)).collect();
    // fresh suspicion window for this launch (no-op when unarmed)
    cluster.begin_job(&nodes);
    let rt = Arc::clone(cluster.runtime());
    rt.begin_world(&nodes);

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(n);
        for (rank, rx) in rxs.into_iter().enumerate() {
            let ctx = Ctx {
                world_rank: rank,
                nranks: n,
                node: ranklist.node_of(rank),
                generation: cluster.node_generation(ranklist.node_of(rank)),
                cluster: Arc::clone(&cluster),
                ranklist: ranklist.clone(),
                rx,
                txs: Arc::clone(&txs),
                pending: RefCell::new(Vec::new()),
                fail_counts: RefCell::new(HashMap::new()),
                next_comm_salt: Cell::new(1),
                coll_seqs: RefCell::new(HashMap::new()),
            };
            let fref = &f;
            let cl = Arc::clone(&cluster);
            let trt = Arc::clone(&rt);
            handles.push(scope.spawn(move || {
                // Register with the runtime; the guard deregisters even on
                // an unwinding panic so the sim scheduler never waits on a
                // dead thread.
                trt.task_enter(rank);
                let _task = TaskGuard { rt: &trt, rank };
                // A panicking rank must not leave its peers blocked in
                // recv forever: flag the job aborted, then unwind.
                let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| fref(&ctx)));
                match out {
                    Ok(res) => res,
                    Err(p) => {
                        cl.job_abort_for_panic();
                        std::panic::resume_unwind(p);
                    }
                }
            }));
        }
        // Lend the launching thread to the scheduler until every rank task
        // is done (no-op under the real runtime).
        rt.drive();
        let mut first_panic = None;
        for (rank, h) in handles.into_iter().enumerate() {
            match h.join() {
                Ok(res) => results[rank] = Some(res),
                Err(p) => {
                    if first_panic.is_none() {
                        first_panic = Some(p);
                    }
                }
            }
        }
        if let Some(p) = first_panic {
            std::panic::resume_unwind(p);
        }
    });

    let mut out = Vec::with_capacity(n);
    let mut fault = None;
    for r in results {
        match r.expect("every rank joined") {
            Ok(v) => out.push(v),
            Err(e) => fault = Some(fault.unwrap_or(e)),
        }
    }
    match fault {
        Some(e) => Err(e),
        None => Ok(out),
    }
}

/// Deregisters a rank task from the runtime on scope exit, unwinding or
/// not.
struct TaskGuard<'a> {
    rt: &'a Arc<dyn Runtime>,
    rank: usize,
}

impl Drop for TaskGuard<'_> {
    fn drop(&mut self) {
        self.rt.task_exit(self.rank);
    }
}

/// Convenience: run `n` ranks on a throwaway cluster with one node per
/// rank (pure message-passing tests and examples that do not care about
/// placement).
pub fn run_local<T, F>(n: usize, f: F) -> Result<Vec<T>, Fault>
where
    T: Send,
    F: Fn(&Ctx) -> Result<T, Fault> + Send + Sync,
{
    let cluster = Arc::new(Cluster::new(ClusterConfig::new(n, 0)));
    let ranklist = Ranklist::round_robin(n, n);
    run_on_cluster(cluster, &ranklist, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::payload::Payload;
    use skt_cluster::FailurePlan;

    #[test]
    fn ranks_see_their_ids_and_nodes() {
        let out = run_local(4, |ctx| Ok((ctx.world_rank(), ctx.node(), ctx.nranks()))).unwrap();
        assert_eq!(out, vec![(0, 0, 4), (1, 1, 4), (2, 2, 4), (3, 3, 4)]);
    }

    #[test]
    fn ping_pong_between_two_ranks() {
        let out = run_local(2, |ctx| {
            let w = ctx.world();
            if ctx.world_rank() == 0 {
                w.send(1, 7, Payload::F64(vec![3.5]))?;
                Ok(w.recv(1, 8)?.into_f64()[0])
            } else {
                let v = w.recv(0, 7)?.into_f64()[0];
                w.send(0, 8, Payload::F64(vec![v * 2.0]))?;
                Ok(v)
            }
        })
        .unwrap();
        assert_eq!(out, vec![7.0, 3.5]);
    }

    #[test]
    fn out_of_order_tags_are_buffered() {
        let out = run_local(2, |ctx| {
            let w = ctx.world();
            if ctx.world_rank() == 0 {
                w.send(1, 1, Payload::I64(vec![10]))?;
                w.send(1, 2, Payload::I64(vec![20]))?;
                Ok(0)
            } else {
                // receive in reverse tag order
                let b = w.recv(0, 2)?.into_i64()[0];
                let a = w.recv(0, 1)?.into_i64()[0];
                Ok(b * 100 + a)
            }
        })
        .unwrap();
        assert_eq!(out[1], 2010);
    }

    #[test]
    fn failpoint_aborts_whole_job() {
        let cluster = Arc::new(Cluster::new(ClusterConfig::new(4, 0)));
        cluster.arm_failure(FailurePlan::new("step", 3, 2));
        let ranklist = Ranklist::round_robin(4, 4);
        let res: Result<Vec<()>, Fault> = run_on_cluster(cluster.clone(), &ranklist, |ctx| {
            loop {
                ctx.failpoint("step")?;
                // ranks also talk so non-dying ranks block in recv
                let w = ctx.world();
                let peer = ctx.world_rank() ^ 1;
                w.send(peer, 0, Payload::Empty)?;
                w.recv(peer, 0)?;
            }
        });
        assert!(res.is_err());
        assert_eq!(cluster.dead_nodes(), vec![2]);
        assert!(cluster.shm(2).is_empty());
    }

    #[test]
    fn results_are_rank_ordered() {
        let out = run_local(8, |ctx| Ok(ctx.world_rank() * 10)).unwrap();
        assert_eq!(out, (0..8).map(|r| r * 10).collect::<Vec<_>>());
    }

    #[test]
    fn shm_persists_across_runs_on_same_cluster() {
        let cluster = Arc::new(Cluster::new(ClusterConfig::new(2, 0)));
        let ranklist = Ranklist::round_robin(2, 2);
        run_on_cluster(cluster.clone(), &ranklist, |ctx| {
            ctx.shm().get_or_create("state", || {
                skt_cluster::SegmentData::F64(vec![ctx.world_rank() as f64])
            });
            Ok(())
        })
        .unwrap();
        let out = run_on_cluster(cluster, &ranklist, |ctx| {
            let seg = ctx.shm().attach("state").expect("persisted");
            let v = seg.read().as_f64()[0];
            Ok(v)
        })
        .unwrap();
        assert_eq!(out, vec![0.0, 1.0]);
    }

    #[test]
    fn hung_node_is_declared_suspect_not_deadlocked() {
        use skt_cluster::{GrayPlan, SimRuntime};
        let cluster = Arc::new(Cluster::new_with_runtime(
            ClusterConfig::new(2, 0),
            SimRuntime::new(11),
        ));
        cluster.arm_fault(GrayPlan::hang("step", 2, 1));
        let ranklist = Ranklist::round_robin(2, 2);
        let res: Result<Vec<()>, Fault> = run_on_cluster(cluster.clone(), &ranklist, |ctx| loop {
            ctx.failpoint("step")?;
            let w = ctx.world();
            let peer = ctx.world_rank() ^ 1;
            w.send(peer, 0, Payload::Empty)?;
            w.recv(peer, 0)?;
        });
        assert!(
            matches!(res, Err(Fault::Suspect { node: 1, .. })),
            "peer must declare the hung node, got {res:?}"
        );
        assert!(cluster.node_alive(1), "suspect, not dead");
        assert!(cluster.node_hung(1), "still actually hung");
    }

    #[test]
    fn hang_that_heals_fast_completes_without_suspicion() {
        use skt_cluster::{GrayPlan, SimRuntime};
        let cluster = Arc::new(Cluster::new_with_runtime(
            ClusterConfig::new(2, 0),
            SimRuntime::new(5),
        ));
        // heals after 3 heartbeat intervals — under the default threshold
        // of 8 no peer can accumulate enough lag to declare
        cluster.arm_fault(GrayPlan::hang("step", 2, 1).heal_after(Duration::from_micros(600)));
        let ranklist = Ranklist::round_robin(2, 2);
        let res = run_on_cluster(cluster.clone(), &ranklist, |ctx| {
            for i in 0..5 {
                ctx.failpoint("step")?;
                let w = ctx.world();
                let peer = ctx.world_rank() ^ 1;
                w.send(peer, 0, Payload::I64(vec![i]))?;
                w.recv(peer, 0)?;
            }
            Ok(ctx.world_rank())
        });
        assert_eq!(res.unwrap(), vec![0, 1], "healed before declaration");
        assert_eq!(cluster.suspected(), None);
        assert!(!cluster.node_hung(1));
    }

    #[test]
    fn fenced_mid_job_rank_gets_zombie_fault() {
        let cluster = Arc::new(Cluster::new(ClusterConfig::new(2, 0)));
        let ranklist = Ranklist::round_robin(2, 2);
        let res: Result<Vec<()>, Fault> = run_on_cluster(cluster.clone(), &ranklist, |ctx| {
            let w = ctx.world();
            if ctx.world_rank() == 0 {
                // fence the peer's node out from under it (what the
                // service does when it gives up on a suspect)
                ctx.cluster().fence_node(1);
                w.send(1, 0, Payload::Empty)?;
                Ok(())
            } else {
                w.recv(0, 0)?;
                // the zombie's own send must be rejected at the source
                w.send(0, 1, Payload::Empty)
            }
        });
        assert!(
            matches!(
                res,
                Err(Fault::Fenced {
                    node: 1,
                    generation: 1
                })
            ),
            "zombie send must be fenced, got {res:?}"
        );
    }

    #[test]
    #[should_panic(expected = "fenced node")]
    fn launching_on_fenced_node_is_rejected() {
        let cluster = Arc::new(Cluster::new(ClusterConfig::new(2, 0)));
        cluster.fence_node(1);
        let ranklist = Ranklist::round_robin(2, 2);
        let _ = run_on_cluster(cluster, &ranklist, |_| Ok(()));
    }

    #[test]
    #[should_panic(expected = "dead node")]
    fn launching_on_dead_node_is_rejected() {
        let cluster = Arc::new(Cluster::new(ClusterConfig::new(2, 0)));
        cluster.kill_node(1);
        cluster.reset_abort();
        let ranklist = Ranklist::round_robin(2, 2);
        let _ = run_on_cluster(cluster, &ranklist, |_| Ok(()));
    }
}
