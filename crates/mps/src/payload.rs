//! Typed message payloads and reduction operators.
//!
//! Messages carry typed vectors rather than raw bytes: ranks live in one
//! process, so moving a `Vec<f64>` is free of serialization cost, and the
//! reduce operators (`MPI_BXOR` on integer words, `MPI_SUM` on doubles —
//! §2.2 of the paper) stay type-safe.
//!
//! The two hot reduce arms — SUM over `F64` and XOR over `U64`, the ones
//! that carry whole checkpoint stripes — run on the cache-blocked
//! multi-threaded kernels from `skt_encoding::kernels`, under the
//! process-wide [`KernelConfig`].

use skt_encoding::{kernels, KernelConfig};

/// A message body.
#[derive(Clone, Debug, PartialEq)]
pub enum Payload {
    /// Double-precision data (matrix blocks, SUM-coded checksums).
    F64(Vec<f64>),
    /// 64-bit words (XOR-coded checksums — `f64` bit patterns).
    U64(Vec<u64>),
    /// Signed integers (pivot indices, iteration counters).
    I64(Vec<i64>),
    /// Raw bytes (serialized headers).
    Bytes(Vec<u8>),
    /// Empty body (barriers, pure signals).
    Empty,
}

impl Payload {
    /// Number of elements (bytes for `Bytes`, 0 for `Empty`).
    pub fn len(&self) -> usize {
        match self {
            Payload::F64(v) => v.len(),
            Payload::U64(v) => v.len(),
            Payload::I64(v) => v.len(),
            Payload::Bytes(v) => v.len(),
            Payload::Empty => 0,
        }
    }

    /// True when the payload holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate wire size in bytes (for network-model accounting).
    pub fn size_bytes(&self) -> usize {
        match self {
            Payload::F64(v) => v.len() * 8,
            Payload::U64(v) => v.len() * 8,
            Payload::I64(v) => v.len() * 8,
            Payload::Bytes(v) => v.len(),
            Payload::Empty => 0,
        }
    }

    /// Unwrap as `Vec<f64>`; panics on type mismatch (a protocol bug).
    pub fn into_f64(self) -> Vec<f64> {
        match self {
            Payload::F64(v) => v,
            other => panic!("expected F64 payload, got {:?}", other.kind()),
        }
    }

    /// Unwrap as `Vec<u64>`; panics on type mismatch.
    pub fn into_u64(self) -> Vec<u64> {
        match self {
            Payload::U64(v) => v,
            other => panic!("expected U64 payload, got {:?}", other.kind()),
        }
    }

    /// Unwrap as `Vec<i64>`; panics on type mismatch.
    pub fn into_i64(self) -> Vec<i64> {
        match self {
            Payload::I64(v) => v,
            other => panic!("expected I64 payload, got {:?}", other.kind()),
        }
    }

    /// Unwrap as `Vec<u8>`; panics on type mismatch.
    pub fn into_bytes(self) -> Vec<u8> {
        match self {
            Payload::Bytes(v) => v,
            other => panic!("expected Bytes payload, got {:?}", other.kind()),
        }
    }

    /// Short kind name for diagnostics.
    pub fn kind(&self) -> &'static str {
        match self {
            Payload::F64(_) => "F64",
            Payload::U64(_) => "U64",
            Payload::I64(_) => "I64",
            Payload::Bytes(_) => "Bytes",
            Payload::Empty => "Empty",
        }
    }
}

/// Element-wise reduction operator, the `MPI_Op` of a reduce.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReduceOp {
    /// Numeric addition (`MPI_SUM`); valid on `F64`, `U64`
    /// (wrapping), and `I64` (wrapping).
    Sum,
    /// Bitwise exclusive-or (`MPI_BXOR`); valid on `U64` and `Bytes`.
    Xor,
    /// Element-wise maximum; valid on `F64` and `I64`.
    Max,
    /// Element-wise minimum; valid on `F64` and `I64`.
    Min,
}

impl ReduceOp {
    /// `acc := acc op rhs`, element-wise. Panics on type mismatch or
    /// length mismatch — both indicate a collective protocol bug, not a
    /// runtime condition.
    pub fn apply(self, acc: &mut Payload, rhs: &Payload) {
        assert_eq!(acc.len(), rhs.len(), "reduce: length mismatch");
        match (self, acc, rhs) {
            // Empty payloads reduce trivially under any op (barriers).
            (_, Payload::Empty, Payload::Empty) => {}
            (ReduceOp::Sum, Payload::F64(a), Payload::F64(b)) => {
                kernels::sum_accumulate(a, b, KernelConfig::global());
            }
            (ReduceOp::Sum, Payload::U64(a), Payload::U64(b)) => {
                for (x, y) in a.iter_mut().zip(b) {
                    *x = x.wrapping_add(*y);
                }
            }
            (ReduceOp::Sum, Payload::I64(a), Payload::I64(b)) => {
                for (x, y) in a.iter_mut().zip(b) {
                    *x = x.wrapping_add(*y);
                }
            }
            (ReduceOp::Xor, Payload::U64(a), Payload::U64(b)) => {
                kernels::xor_accumulate_u64(a, b, KernelConfig::global());
            }
            (ReduceOp::Xor, Payload::Bytes(a), Payload::Bytes(b)) => {
                for (x, y) in a.iter_mut().zip(b) {
                    *x ^= *y;
                }
            }
            (ReduceOp::Max, Payload::F64(a), Payload::F64(b)) => {
                for (x, y) in a.iter_mut().zip(b) {
                    *x = x.max(*y);
                }
            }
            (ReduceOp::Max, Payload::I64(a), Payload::I64(b)) => {
                for (x, y) in a.iter_mut().zip(b) {
                    *x = (*x).max(*y);
                }
            }
            (ReduceOp::Min, Payload::F64(a), Payload::F64(b)) => {
                for (x, y) in a.iter_mut().zip(b) {
                    *x = x.min(*y);
                }
            }
            (ReduceOp::Min, Payload::I64(a), Payload::I64(b)) => {
                for (x, y) in a.iter_mut().zip(b) {
                    *x = (*x).min(*y);
                }
            }
            (op, a, b) => panic!(
                "reduce op {:?} unsupported on ({}, {})",
                op,
                a.kind(),
                b.kind()
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_f64() {
        let mut a = Payload::F64(vec![1.0, 2.0]);
        ReduceOp::Sum.apply(&mut a, &Payload::F64(vec![10.0, 20.0]));
        assert_eq!(a, Payload::F64(vec![11.0, 22.0]));
    }

    #[test]
    fn xor_u64_is_self_inverse() {
        let orig = vec![0xDEAD, 0xBEEF, 0x1234];
        let key = vec![0xAAAA, 0x5555, 0xFFFF];
        let mut a = Payload::U64(orig.clone());
        ReduceOp::Xor.apply(&mut a, &Payload::U64(key.clone()));
        ReduceOp::Xor.apply(&mut a, &Payload::U64(key));
        assert_eq!(a, Payload::U64(orig));
    }

    #[test]
    fn max_min_i64() {
        let mut a = Payload::I64(vec![1, 9]);
        ReduceOp::Max.apply(&mut a, &Payload::I64(vec![5, 2]));
        assert_eq!(a, Payload::I64(vec![5, 9]));
        ReduceOp::Min.apply(&mut a, &Payload::I64(vec![0, 100]));
        assert_eq!(a, Payload::I64(vec![0, 9]));
    }

    #[test]
    #[should_panic(expected = "unsupported")]
    fn xor_on_f64_is_rejected() {
        let mut a = Payload::F64(vec![1.0]);
        ReduceOp::Xor.apply(&mut a, &Payload::F64(vec![1.0]));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_is_rejected() {
        let mut a = Payload::U64(vec![1]);
        ReduceOp::Xor.apply(&mut a, &Payload::U64(vec![1, 2]));
    }

    #[test]
    fn payload_sizes() {
        assert_eq!(Payload::F64(vec![0.0; 3]).size_bytes(), 24);
        assert_eq!(Payload::Bytes(vec![0; 3]).size_bytes(), 3);
        assert_eq!(Payload::Empty.len(), 0);
        assert!(Payload::Empty.is_empty());
    }

    #[test]
    #[should_panic(expected = "expected F64")]
    fn typed_unwrap_enforced() {
        Payload::U64(vec![1]).into_f64();
    }
}
