//! Single-failure parity codecs.
//!
//! The paper's general encoding is `X_S = X_1 + X_2 + … + X_{N-1}` where
//! `+` is "either a numerical sum or a logical exclusive-or" (§2.1),
//! computed with `MPI_Reduce(MPI_BXOR)` / `MPI_Reduce(MPI_SUM)` (§2.2).
//! XOR is the default — it is exact (operates on the `f64` *bit
//! patterns*) and often faster; SUM is supported for completeness and for
//! platforms where a numeric reduce is preferable.
//!
//! The element loops run on the [`crate::kernels`] engine: the plain
//! methods use the process-wide [`KernelConfig`], the `_with` variants
//! take an explicit policy.

use crate::kernels::{self, KernelConfig};

/// Parity code over `f64` stripes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Code {
    /// Bitwise XOR of the IEEE-754 bit patterns. Exact; self-inverse.
    #[default]
    Xor,
    /// Numeric addition. Recovery subtracts, so reconstructed values can
    /// differ from the originals by floating-point rounding.
    Sum,
}

impl Code {
    /// The identity element buffer (all zero bits / all `0.0`).
    #[must_use]
    pub fn zero(self, len: usize) -> Vec<f64> {
        kernels::zeroed(len)
    }

    /// `acc := acc ⊕ x` element-wise, under the process-wide
    /// [`KernelConfig`].
    pub fn accumulate(self, acc: &mut [f64], x: &[f64]) {
        self.accumulate_with(acc, x, KernelConfig::global());
    }

    /// `acc := acc ⊕ x` element-wise under an explicit kernel policy.
    pub fn accumulate_with(self, acc: &mut [f64], x: &[f64], cfg: KernelConfig) {
        assert_eq!(acc.len(), x.len(), "accumulate: length mismatch");
        match self {
            Code::Xor => kernels::xor_accumulate(acc, x, cfg),
            Code::Sum => kernels::sum_accumulate(acc, x, cfg),
        }
    }

    /// `acc := acc ⊖ x` element-wise (the recovery direction). For XOR
    /// this is the same operation; for SUM it subtracts.
    pub fn cancel(self, acc: &mut [f64], x: &[f64]) {
        self.cancel_with(acc, x, KernelConfig::global());
    }

    /// `acc := acc ⊖ x` element-wise under an explicit kernel policy.
    pub fn cancel_with(self, acc: &mut [f64], x: &[f64], cfg: KernelConfig) {
        assert_eq!(acc.len(), x.len(), "cancel: length mismatch");
        match self {
            Code::Xor => kernels::xor_accumulate(acc, x, cfg),
            Code::Sum => kernels::sub_accumulate(acc, x, cfg),
        }
    }

    /// Parity of a set of stripes: `⊕_i stripes[i]`.
    #[must_use]
    pub fn parity(
        self,
        len: usize,
        stripes: impl IntoIterator<Item = impl AsRef<[f64]>>,
    ) -> Vec<f64> {
        let mut acc = self.zero(len);
        for s in stripes {
            self.accumulate(&mut acc, s.as_ref());
        }
        acc
    }

    /// Reconstruct the missing stripe from the parity and every surviving
    /// stripe: `missing = parity ⊖ ⊕_i survivors[i]`.
    #[must_use]
    pub fn reconstruct(
        self,
        parity: &[f64],
        survivors: impl IntoIterator<Item = impl AsRef<[f64]>>,
    ) -> Vec<f64> {
        let mut out = parity.to_vec();
        for s in survivors {
            self.cancel(&mut out, s.as_ref());
        }
        out
    }

    /// The `MPI_Op`-style name the paper uses for this code.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Code::Xor => "BXOR",
            Code::Sum => "SUM",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stripes() -> Vec<Vec<f64>> {
        vec![
            vec![1.5, -2.25, 1e300, 0.0],
            vec![3.0, 0.5, -1e-300, -0.0],
            vec![-7.125, 42.0, 1.0, 123.456],
        ]
    }

    #[test]
    fn xor_reconstruction_is_bit_exact() {
        let s = stripes();
        let parity = Code::Xor.parity(4, &s);
        for missing in 0..3 {
            let survivors: Vec<&Vec<f64>> = s
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != missing)
                .map(|(_, v)| v)
                .collect();
            let rec = Code::Xor.reconstruct(&parity, survivors);
            for (a, b) in rec.iter().zip(&s[missing]) {
                assert_eq!(a.to_bits(), b.to_bits(), "XOR must be bit-exact");
            }
        }
    }

    #[test]
    fn sum_reconstruction_is_close() {
        let s = stripes();
        let parity = Code::Sum.parity(4, &s);
        for missing in 0..3 {
            let survivors: Vec<&Vec<f64>> = s
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != missing)
                .map(|(_, v)| v)
                .collect();
            let rec = Code::Sum.reconstruct(&parity, survivors);
            for (a, b) in rec.iter().zip(&s[missing]) {
                let tol = 1e-9 * b.abs().max(1.0) + 1e300 * 1e-15; // catastrophic-cancel headroom
                assert!((a - b).abs() <= tol, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn xor_handles_nan_bit_patterns() {
        // XOR of valid floats can produce NaN bit patterns; they must
        // round-trip as bits.
        let a = vec![f64::from_bits(0x7FF8_0000_0000_0001)]; // a NaN
        let b = vec![1.0];
        let parity = Code::Xor.parity(1, [&a, &b]);
        let rec = Code::Xor.reconstruct(&parity, [&b]);
        assert_eq!(rec[0].to_bits(), a[0].to_bits());
    }

    #[test]
    fn parity_of_nothing_is_zero() {
        let p = Code::Xor.parity(3, Vec::<Vec<f64>>::new());
        assert_eq!(p, vec![0.0; 3]);
    }

    #[test]
    fn accumulate_is_associative_for_xor() {
        let s = stripes();
        let mut left = s[0].clone();
        Code::Xor.accumulate(&mut left, &s[1]);
        Code::Xor.accumulate(&mut left, &s[2]);
        let mut right = s[1].clone();
        Code::Xor.accumulate(&mut right, &s[2]);
        Code::Xor.accumulate(&mut right, &s[0]);
        for (a, b) in left.iter().zip(&right) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn names_match_mpi_ops() {
        assert_eq!(Code::Xor.name(), "BXOR");
        assert_eq!(Code::Sum.name(), "SUM");
        assert_eq!(Code::default(), Code::Xor, "paper: XOR by default");
    }
}
