//! Cache-blocked, multi-threaded accumulate / copy kernels.
//!
//! Every hot loop of the checkpoint path — the stripe reduces behind
//! `MPI_Reduce`, the `work → B` / `D → C` flush copies, and the
//! bits↔floats payload conversions — is a streaming element-wise pass
//! over large `f64` buffers. This module gives them one shared engine:
//!
//! * buffers are walked in [`KernelConfig::chunk_len`]-element blocks so
//!   a block stays cache-resident while an operator runs over it;
//! * when a buffer spans more than one block and
//!   [`KernelConfig::threads`] allows it, the blocks are divided into
//!   contiguous per-thread spans and processed by scoped OS threads;
//! * the XOR operator works on 64-bit bit patterns in an 8-wide unrolled
//!   main loop with a scalar tail, so the compiler can keep it in vector
//!   registers.
//!
//! All operators are *element-wise* (no cross-element reassociation), so
//! the parallel result is bit-identical to the serial one for XOR / copy
//! and rounding-identical for SUM regardless of the partitioning.
//!
//! The process-wide default configuration comes from the environment:
//! `SKT_KERNEL_THREADS` (default: `available_parallelism`),
//! `SKT_KERNEL_CHUNK_LEN` in elements (default [`DEFAULT_CHUNK_LEN`]),
//! and `SKT_KERNEL_SIMD` (`0` forces the scalar reference kernels, `1`
//! forces the accelerated ones, unset probes the CPU — see
//! [`SimdMode`]). With the default chunk length, buffers of ≤ 512 KiB
//! always run serial — thread spawn costs more than it saves there.

use crate::simd::{self, GfBackend, SimdMode};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Default cache block, in `f64` elements: 64 Ki elements = 512 KiB,
/// sized to fit a typical per-core L2 alongside the second operand.
pub const DEFAULT_CHUNK_LEN: usize = 1 << 16;

/// Execution policy for the kernels: how many threads may be used and
/// how large one cache block is (in elements).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KernelConfig {
    /// Maximum worker threads (including the caller). `1` = serial.
    pub threads: usize,
    /// Cache-block length in elements; also the granularity of the
    /// per-thread span split.
    pub chunk_len: usize,
    /// How the byte-level GF(2^8)/CRC kernels pick their implementation.
    pub simd: SimdMode,
}

impl Default for KernelConfig {
    fn default() -> Self {
        Self::global()
    }
}

// 0 means "not initialised yet"; both values are always >= 1 once set.
static G_THREADS: AtomicUsize = AtomicUsize::new(0);
static G_CHUNK: AtomicUsize = AtomicUsize::new(0);
// 0 = uninitialised, then 1 + the SimdMode discriminant.
static G_SIMD: AtomicUsize = AtomicUsize::new(0);

fn simd_to_raw(mode: SimdMode) -> usize {
    match mode {
        SimdMode::Auto => 1,
        SimdMode::ForceScalar => 2,
        SimdMode::ForceSimd => 3,
    }
}

fn simd_from_raw(raw: usize) -> SimdMode {
    match raw {
        2 => SimdMode::ForceScalar,
        3 => SimdMode::ForceSimd,
        _ => SimdMode::Auto,
    }
}

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok()?.trim().parse().ok()
}

impl KernelConfig {
    /// Explicit policy; both parameters are clamped to at least 1. The
    /// kernel dispatch defaults to [`SimdMode::Auto`]; use
    /// [`KernelConfig::with_simd`] to force a path.
    #[must_use]
    pub fn new(threads: usize, chunk_len: usize) -> Self {
        KernelConfig {
            threads: threads.max(1),
            chunk_len: chunk_len.max(1),
            simd: SimdMode::Auto,
        }
    }

    /// Single-threaded policy with the default cache block.
    #[must_use]
    pub const fn serial() -> Self {
        KernelConfig {
            threads: 1,
            chunk_len: DEFAULT_CHUNK_LEN,
            simd: SimdMode::Auto,
        }
    }

    /// The same policy with a forced/auto kernel dispatch mode.
    #[must_use]
    pub fn with_simd(self, simd: SimdMode) -> Self {
        KernelConfig { simd, ..self }
    }

    /// The process-wide policy: `SKT_KERNEL_THREADS` /
    /// `SKT_KERNEL_CHUNK_LEN` / `SKT_KERNEL_SIMD` when set, otherwise
    /// `available_parallelism`, [`DEFAULT_CHUNK_LEN`] and
    /// [`SimdMode::Auto`].
    #[must_use]
    pub fn global() -> Self {
        let mut threads = G_THREADS.load(Ordering::Relaxed);
        if threads == 0 {
            threads = env_usize("SKT_KERNEL_THREADS")
                .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
                .max(1);
            G_THREADS.store(threads, Ordering::Relaxed);
        }
        let mut chunk_len = G_CHUNK.load(Ordering::Relaxed);
        if chunk_len == 0 {
            chunk_len = env_usize("SKT_KERNEL_CHUNK_LEN")
                .unwrap_or(DEFAULT_CHUNK_LEN)
                .max(1);
            G_CHUNK.store(chunk_len, Ordering::Relaxed);
        }
        let mut simd_raw = G_SIMD.load(Ordering::Relaxed);
        if simd_raw == 0 {
            let mode = std::env::var("SKT_KERNEL_SIMD")
                .map_or(SimdMode::Auto, |v| SimdMode::from_env_str(&v));
            simd_raw = simd_to_raw(mode);
            G_SIMD.store(simd_raw, Ordering::Relaxed);
        }
        KernelConfig {
            threads,
            chunk_len,
            simd: simd_from_raw(simd_raw),
        }
    }

    /// Install `self` as the process-wide policy returned by
    /// [`KernelConfig::global`] (used by benchmarks to A/B variants).
    pub fn set_global(self) {
        G_THREADS.store(self.threads.max(1), Ordering::Relaxed);
        G_CHUNK.store(self.chunk_len.max(1), Ordering::Relaxed);
        G_SIMD.store(simd_to_raw(self.simd), Ordering::Relaxed);
    }

    /// Whether a buffer of `len` elements runs multi-threaded under this
    /// policy: more than one thread allowed *and* more than one block to
    /// hand out.
    #[must_use]
    pub fn is_parallel_for(self, len: usize) -> bool {
        self.threads > 1 && len.div_ceil(self.chunk_len) > 1
    }
}

/// Apply `op` to matching cache blocks of `dst` / `src`.
fn run_span<A, B>(chunk_len: usize, dst: &mut [A], src: &[B], op: impl Fn(&mut [A], &[B])) {
    for (d, s) in dst.chunks_mut(chunk_len).zip(src.chunks(chunk_len)) {
        op(d, s);
    }
}

/// The shared driver: run `op` over equal-length `dst` / `src` in cache
/// blocks, fanning contiguous block spans out to scoped threads when the
/// policy allows. `op` must be element-wise (block-boundary free).
fn par_zip<A, B, F>(cfg: KernelConfig, dst: &mut [A], src: &[B], op: F)
where
    A: Send,
    B: Sync,
    F: Fn(&mut [A], &[B]) + Copy + Send + Sync,
{
    assert_eq!(dst.len(), src.len(), "kernel: length mismatch");
    if !cfg.is_parallel_for(dst.len()) {
        run_span(cfg.chunk_len, dst, src, op);
        return;
    }
    let n_chunks = dst.len().div_ceil(cfg.chunk_len);
    let workers = cfg.threads.min(n_chunks);
    // Per-thread spans are whole numbers of blocks so block boundaries
    // (and thus the op's traversal) are identical to the serial walk.
    let span = n_chunks.div_ceil(workers) * cfg.chunk_len;
    std::thread::scope(|scope| {
        for (d, s) in dst.chunks_mut(span).zip(src.chunks(span)) {
            scope.spawn(move || run_span(cfg.chunk_len, d, s, op));
        }
    });
}

/// In-place variant of [`par_zip`]: run `op` over `buf` alone in cache
/// blocks, fanning block spans out to scoped threads when allowed.
fn par_inplace<A, F>(cfg: KernelConfig, buf: &mut [A], op: F)
where
    A: Send,
    F: Fn(&mut [A]) + Copy + Send + Sync,
{
    if !cfg.is_parallel_for(buf.len()) {
        for b in buf.chunks_mut(cfg.chunk_len) {
            op(b);
        }
        return;
    }
    let n_chunks = buf.len().div_ceil(cfg.chunk_len);
    let workers = cfg.threads.min(n_chunks);
    let span = n_chunks.div_ceil(workers) * cfg.chunk_len;
    std::thread::scope(|scope| {
        for d in buf.chunks_mut(span) {
            scope.spawn(move || {
                for b in d.chunks_mut(cfg.chunk_len) {
                    op(b);
                }
            });
        }
    });
}

/// 8-wide unrolled XOR over `u64` words with a scalar tail.
fn xor_block_u64(acc: &mut [u64], x: &[u64]) {
    let mut a8 = acc.chunks_exact_mut(8);
    let mut x8 = x.chunks_exact(8);
    for (a, b) in (&mut a8).zip(&mut x8) {
        a[0] ^= b[0];
        a[1] ^= b[1];
        a[2] ^= b[2];
        a[3] ^= b[3];
        a[4] ^= b[4];
        a[5] ^= b[5];
        a[6] ^= b[6];
        a[7] ^= b[7];
    }
    for (a, b) in a8.into_remainder().iter_mut().zip(x8.remainder()) {
        *a ^= *b;
    }
}

/// 8-wide unrolled XOR over `f64` bit patterns with a scalar tail.
fn xor_block_f64(acc: &mut [f64], x: &[f64]) {
    let mut a8 = acc.chunks_exact_mut(8);
    let mut x8 = x.chunks_exact(8);
    for (a, b) in (&mut a8).zip(&mut x8) {
        a[0] = f64::from_bits(a[0].to_bits() ^ b[0].to_bits());
        a[1] = f64::from_bits(a[1].to_bits() ^ b[1].to_bits());
        a[2] = f64::from_bits(a[2].to_bits() ^ b[2].to_bits());
        a[3] = f64::from_bits(a[3].to_bits() ^ b[3].to_bits());
        a[4] = f64::from_bits(a[4].to_bits() ^ b[4].to_bits());
        a[5] = f64::from_bits(a[5].to_bits() ^ b[5].to_bits());
        a[6] = f64::from_bits(a[6].to_bits() ^ b[6].to_bits());
        a[7] = f64::from_bits(a[7].to_bits() ^ b[7].to_bits());
    }
    for (a, b) in a8.into_remainder().iter_mut().zip(x8.remainder()) {
        *a = f64::from_bits(a.to_bits() ^ b.to_bits());
    }
}

/// `acc ^= x` over `f64` bit patterns (the XOR code's accumulate).
pub fn xor_accumulate(acc: &mut [f64], x: &[f64], cfg: KernelConfig) {
    par_zip(cfg, acc, x, xor_block_f64);
}

/// `acc ^= x` over raw words (the `MPI_BXOR` reduce on `U64` payloads).
pub fn xor_accumulate_u64(acc: &mut [u64], x: &[u64], cfg: KernelConfig) {
    par_zip(cfg, acc, x, xor_block_u64);
}

/// `acc += x` element-wise (the `MPI_SUM` reduce / SUM-code accumulate).
pub fn sum_accumulate(acc: &mut [f64], x: &[f64], cfg: KernelConfig) {
    par_zip(cfg, acc, x, |a, b| {
        for (p, q) in a.iter_mut().zip(b) {
            *p += *q;
        }
    });
}

/// `acc -= x` element-wise (the SUM code's recovery direction).
pub fn sub_accumulate(acc: &mut [f64], x: &[f64], cfg: KernelConfig) {
    par_zip(cfg, acc, x, |a, b| {
        for (p, q) in a.iter_mut().zip(b) {
            *p -= *q;
        }
    });
}

/// `dst := src` (the checkpoint flush copies).
pub fn copy(dst: &mut [f64], src: &[f64], cfg: KernelConfig) {
    par_zip(cfg, dst, src, |d, s| d.copy_from_slice(s));
}

/// A fresh all-zero buffer (the codes' identity element). Left to the
/// allocator on purpose: `vec![0.0; len]` comes straight from zeroed
/// pages, which no thread fan-out can beat.
#[must_use]
pub fn zeroed(len: usize) -> Vec<f64> {
    vec![0.0; len]
}

/// The IEEE-754 bit patterns of `src` (payload conversion for BXOR).
#[must_use]
pub fn bits_of(src: &[f64], cfg: KernelConfig) -> Vec<u64> {
    let mut out = vec![0u64; src.len()];
    par_zip(cfg, &mut out, src, |d, s| {
        for (p, q) in d.iter_mut().zip(s) {
            *p = q.to_bits();
        }
    });
    out
}

/// The `f64` values of bit patterns `src` (inverse of [`bits_of`]).
#[must_use]
pub fn floats_of(src: &[u64], cfg: KernelConfig) -> Vec<f64> {
    let mut out = vec![0.0f64; src.len()];
    par_zip(cfg, &mut out, src, |d, s| {
        for (p, q) in d.iter_mut().zip(s) {
            *p = f64::from_bits(*q);
        }
    });
    out
}

/// Byte-wise GF(256) scale of the byte view of `buf` by the scalar `c`,
/// in place (the `D := c·D` steps of the parity solves). GF(2^8) acts on
/// every byte independently, so the operation is element-wise,
/// endian-agnostic, and bit-identical under any chunk/thread partition
/// and any [`SimdMode`] backend.
pub fn gf_scale(buf: &mut [f64], c: u8, cfg: KernelConfig) {
    if c == 1 {
        return;
    }
    if c == 0 {
        buf.fill(0.0);
        return;
    }
    let backend = GfBackend::select(cfg.simd);
    par_inplace(cfg, buf, move |b| {
        simd::gf_scale_bytes(simd::f64_bytes_mut(b), c, backend);
    });
}

/// Byte-wise GF(256) multiply-accumulate over byte views: `acc ^= c·x`
/// (the parity accumulates of the RS/dual codes). Element-wise per byte,
/// so bit-identical under any partition and backend (see [`gf_scale`]).
pub fn gf_mac(acc: &mut [f64], x: &[f64], c: u8, cfg: KernelConfig) {
    if c == 0 {
        return;
    }
    let backend = GfBackend::select(cfg.simd);
    par_zip(cfg, acc, x, move |a, b| {
        simd::gf_mac_bytes(simd::f64_bytes_mut(a), simd::f64_bytes(b), c, backend);
    });
}

/// Element-wise negation of `src` (the SUM code's cancel-by-reduce trick).
#[must_use]
pub fn negated(src: &[f64], cfg: KernelConfig) -> Vec<f64> {
    let mut out = vec![0.0f64; src.len()];
    par_zip(cfg, &mut out, src, |d, s| {
        for (p, q) in d.iter_mut().zip(s) {
            *p = -q;
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gf256;

    fn data(len: usize, salt: u64) -> Vec<f64> {
        // Deterministic mixed-magnitude values incl. negatives and zeros.
        (0..len)
            .map(|i| {
                let x = (i as u64)
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(salt);
                f64::from_bits(x >> 2) // exponent < 0x7FF: finite values
            })
            .collect()
    }

    fn configs() -> Vec<KernelConfig> {
        vec![
            KernelConfig::serial(),
            KernelConfig::new(1, 7),
            KernelConfig::new(2, 13),
            KernelConfig::new(4, 64),
            KernelConfig::new(8, 1),
            KernelConfig::new(3, 1 << 20), // chunk larger than any test buffer
            KernelConfig::serial().with_simd(SimdMode::ForceScalar),
            KernelConfig::serial().with_simd(SimdMode::ForceSimd),
            KernelConfig::new(2, 13).with_simd(SimdMode::ForceSimd),
        ]
    }

    #[test]
    fn xor_matches_scalar_reference_for_every_policy() {
        for len in [0usize, 1, 7, 8, 9, 1023, 4096, 10_000] {
            let base = data(len, 1);
            let x = data(len, 2);
            let mut reference = base.clone();
            for (a, b) in reference.iter_mut().zip(&x) {
                *a = f64::from_bits(a.to_bits() ^ b.to_bits());
            }
            for cfg in configs() {
                let mut acc = base.clone();
                xor_accumulate(&mut acc, &x, cfg);
                for (i, (a, r)) in acc.iter().zip(&reference).enumerate() {
                    assert_eq!(a.to_bits(), r.to_bits(), "len {len} cfg {cfg:?} idx {i}");
                }
            }
        }
    }

    #[test]
    fn sum_is_bit_identical_across_policies() {
        // Element-wise add has no reassociation: every policy must agree
        // bit-for-bit, not just within rounding.
        let len = 5000;
        let base = data(len, 3);
        let x = data(len, 4);
        let mut reference = base.clone();
        for (a, b) in reference.iter_mut().zip(&x) {
            *a += *b;
        }
        for cfg in configs() {
            let mut acc = base.clone();
            sum_accumulate(&mut acc, &x, cfg);
            assert!(
                acc.iter()
                    .zip(&reference)
                    .all(|(a, r)| a.to_bits() == r.to_bits()),
                "cfg {cfg:?}"
            );
        }
    }

    #[test]
    fn sub_then_sum_round_trips() {
        let len = 777;
        let base = data(len, 5);
        let x = data(len, 6);
        let cfg = KernelConfig::new(4, 100);
        let mut acc = base.clone();
        sum_accumulate(&mut acc, &x, cfg);
        sub_accumulate(&mut acc, &x, cfg);
        // +x then -x is exact when no overflow to inf occurs... it is not
        // in general; compare against the serial walk instead.
        let mut reference = base;
        sum_accumulate(&mut reference, &x, KernelConfig::serial());
        sub_accumulate(&mut reference, &x, KernelConfig::serial());
        assert!(acc
            .iter()
            .zip(&reference)
            .all(|(a, r)| a.to_bits() == r.to_bits()));
    }

    #[test]
    fn copy_and_u64_xor_match_serial() {
        let len = 3001;
        let src = data(len, 7);
        for cfg in configs() {
            let mut dst = vec![0.0; len];
            copy(&mut dst, &src, cfg);
            assert!(dst
                .iter()
                .zip(&src)
                .all(|(a, b)| a.to_bits() == b.to_bits()));

            let mut w: Vec<u64> = src.iter().map(|v| v.to_bits()).collect();
            let key: Vec<u64> = data(len, 8).iter().map(|v| v.to_bits()).collect();
            xor_accumulate_u64(&mut w, &key, cfg);
            xor_accumulate_u64(&mut w, &key, cfg);
            assert!(
                w.iter().zip(&src).all(|(a, b)| *a == b.to_bits()),
                "self-inverse"
            );
        }
    }

    #[test]
    fn conversions_round_trip() {
        let src = data(999, 9);
        for cfg in configs() {
            let bits = bits_of(&src, cfg);
            let back = floats_of(&bits, cfg);
            assert!(back
                .iter()
                .zip(&src)
                .all(|(a, b)| a.to_bits() == b.to_bits()));
            let neg = negated(&src, cfg);
            assert!(neg
                .iter()
                .zip(&src)
                .all(|(a, b)| *a == -*b || (a.is_nan() && b.is_nan())));
        }
    }

    #[test]
    fn parallel_decision_rules() {
        assert!(!KernelConfig::serial().is_parallel_for(usize::MAX));
        let cfg = KernelConfig::new(4, 100);
        assert!(!cfg.is_parallel_for(0));
        assert!(!cfg.is_parallel_for(100), "single block stays serial");
        assert!(cfg.is_parallel_for(101));
        // clamping
        assert_eq!(KernelConfig::new(0, 0), KernelConfig::new(1, 1));
    }

    #[test]
    fn global_config_is_settable() {
        // Don't assert the ambient default (env-dependent); assert that
        // set_global round-trips and clamps.
        let prev = KernelConfig::global();
        KernelConfig::new(3, 77).set_global();
        assert_eq!(KernelConfig::global(), KernelConfig::new(3, 77));
        KernelConfig {
            threads: 0,
            chunk_len: 0,
            simd: SimdMode::Auto,
        }
        .set_global();
        assert_eq!(KernelConfig::global(), KernelConfig::new(1, 1));
        KernelConfig::serial()
            .with_simd(SimdMode::ForceScalar)
            .set_global();
        assert_eq!(KernelConfig::global().simd, SimdMode::ForceScalar);
        prev.set_global();
    }

    #[test]
    fn gf_kernels_match_byte_reference_for_every_policy() {
        let len = 2049;
        let base = data(len, 11);
        let x = data(len, 12);
        for c in [0u8, 1, 2, 29, 255] {
            // byte-level reference via the scalar gf256 ops
            let mut scale_ref: Vec<u8> = base.iter().flat_map(|v| v.to_le_bytes()).collect();
            gf256::scale_slice(&mut scale_ref, c);
            let mut mac_ref: Vec<u8> = base.iter().flat_map(|v| v.to_le_bytes()).collect();
            let xb: Vec<u8> = x.iter().flat_map(|v| v.to_le_bytes()).collect();
            gf256::mac_slice(&mut mac_ref, &xb, c);
            for cfg in configs() {
                let mut acc = base.clone();
                gf_scale(&mut acc, c, cfg);
                let got: Vec<u8> = acc.iter().flat_map(|v| v.to_le_bytes()).collect();
                assert_eq!(got, scale_ref, "scale c={c} cfg {cfg:?}");

                let mut acc = base.clone();
                gf_mac(&mut acc, &x, c, cfg);
                let got: Vec<u8> = acc.iter().flat_map(|v| v.to_le_bytes()).collect();
                assert_eq!(got, mac_ref, "mac c={c} cfg {cfg:?}");
            }
        }
    }

    #[test]
    fn gf_scale_is_invertible() {
        let mut buf = data(513, 13);
        let orig = buf.clone();
        let cfg = KernelConfig::new(4, 64);
        gf_scale(&mut buf, 37, cfg);
        gf_scale(&mut buf, gf256::inv(37), cfg);
        assert!(buf
            .iter()
            .zip(&orig)
            .all(|(a, b)| a.to_bits() == b.to_bits()));
    }

    #[test]
    fn zeroed_is_identity_for_xor_and_sum() {
        let z = zeroed(33);
        assert!(z.iter().all(|v| v.to_bits() == 0));
        let src = data(33, 10);
        let mut acc = src.clone();
        xor_accumulate(&mut acc, &z, KernelConfig::serial());
        assert_eq!(acc, src);
    }
}
