//! Generalized Reed–Solomon erasure codec over GF(2^8): `m` parity
//! stripes per slot tolerate any `m` simultaneous erasures in the slot's
//! codeword, for arbitrary `m ≥ 1`.
//!
//! # Construction
//!
//! The generator matrix is **Cauchy** rather than plain Vandermonde: the
//! coefficient of data position `pos` in parity role `role` is
//!
//! ```text
//! c[role][pos] = 1 / (x_role ⊕ y_pos),   x_role = role,  y_pos = m + pos
//! ```
//!
//! The x-coordinates (roles `0..m`) and y-coordinates (`m..m+k`) are
//! drawn from disjoint byte ranges, so every denominator is nonzero, and
//! *every square submatrix of a Cauchy matrix is nonsingular*. That last
//! property is what makes the decode unconditional: whichever `e ≤ m`
//! codeword positions are erased and whichever `e` parity roles survive,
//! the `e×e` system is invertible. (Row-subsets of a plain Vandermonde
//! matrix over GF(2^8) do not have this guarantee.)
//!
//! # Distributed encode
//!
//! Encoding stays one reduce per parity role: a rank's contribution to
//! role `role` is its data stripe pre-scaled by `c[role][pos]` locally,
//! and the wire combine is plain bitwise XOR ([`Wire::Bits`]), exactly
//! like the P+Q codec. The reduce result *is* the parity.
//!
//! # Decode
//!
//! [`ErasureCodec::solve`] picks the first `e` surviving role syndromes,
//! inverts the `e×e` Cauchy submatrix with
//! [`gf256::invert_matrix`] (Gauss–Jordan over the field), and rebuilds
//! each erased stripe as a [`kernels::gf_mac`] combination of the
//! syndromes — so the heavy lifting runs on the same chunked,
//! SIMD-dispatched kernel engine as encoding.

use crate::codec::{ErasureCodec, Wire};
use crate::gf256;
use crate::kernels::{self, KernelConfig};

/// Reed–Solomon codec with `m` parity roles (see module docs).
pub struct RsCodec {
    m: usize,
    name: &'static str,
}

impl RsCodec {
    /// A codec tolerating `m` erasures per group. `m` must be at least 1
    /// and small enough that the Cauchy coordinates fit the field; data
    /// positions are then limited to `pos < 256 - m`.
    #[must_use]
    pub fn new(m: usize) -> Self {
        assert!(m >= 1, "RS needs at least one parity role");
        assert!(m < 128, "RS over GF(2^8): parity count must stay below 128");
        RsCodec {
            m,
            name: Box::leak(format!("RS(m={m})").into_boxed_str()),
        }
    }

    /// The Cauchy generator coefficient of data position `pos` in parity
    /// role `role`: `1 / (role ⊕ (m + pos))`.
    #[must_use]
    pub fn coeff(&self, role: usize, pos: usize) -> u8 {
        assert!(role < self.m, "role {role} out of range for m={}", self.m);
        assert!(
            self.m + pos < 256,
            "RS over GF(2^8): codeword position {pos} exceeds the field (m={})",
            self.m
        );
        gf256::inv((role as u8) ^ ((self.m + pos) as u8))
    }

    /// The `erased.len() × erased.len()` decode submatrix for the given
    /// erased positions and surviving roles.
    fn submatrix(&self, roles: &[usize], erased: &[usize]) -> Vec<Vec<u8>> {
        roles
            .iter()
            .map(|&r| erased.iter().map(|&x| self.coeff(r, x)).collect())
            .collect()
    }
}

impl ErasureCodec for RsCodec {
    fn parity_count(&self) -> usize {
        self.m
    }

    fn name(&self) -> &'static str {
        self.name
    }

    fn wire(&self) -> Wire {
        Wire::Bits
    }

    fn contrib(&self, role: usize, pos: usize, stripe: &[f64], cfg: KernelConfig) -> Vec<f64> {
        let mut out = stripe.to_vec();
        kernels::gf_scale(&mut out, self.coeff(role, pos), cfg);
        out
    }

    fn cancel_contrib(
        &self,
        role: usize,
        pos: usize,
        stripe: &[f64],
        cfg: KernelConfig,
    ) -> Vec<f64> {
        // XOR wire: cancelling is re-contributing.
        self.contrib(role, pos, stripe, cfg)
    }

    fn solve(
        &self,
        erased: &[usize],
        syndromes: &[(usize, Vec<f64>)],
        cfg: KernelConfig,
    ) -> Vec<Vec<f64>> {
        let e = erased.len();
        assert!(
            e <= self.m,
            "{} corrects at most {} erasures, got {e}",
            self.name,
            self.m
        );
        if e == 0 {
            return Vec::new();
        }
        assert!(
            syndromes.len() >= e,
            "{}: need {e} surviving roles, have {}",
            self.name,
            syndromes.len()
        );
        // Any e surviving roles suffice (every Cauchy submatrix is
        // invertible); take the first e.
        let chosen = &syndromes[..e];
        let roles: Vec<usize> = chosen.iter().map(|(r, _)| *r).collect();
        let a = self.submatrix(&roles, erased);
        let a_inv =
            gf256::invert_matrix(&a).expect("Cauchy submatrices are nonsingular by construction");
        let len = chosen[0].1.len();
        a_inv
            .iter()
            .map(|row| {
                let mut d = kernels::zeroed(len);
                for (c, (_, s)) in row.iter().zip(chosen) {
                    kernels::gf_mac(&mut d, s, *c, cfg);
                }
                d
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::CodecSpec;

    fn stripe(pos: usize, len: usize) -> Vec<f64> {
        (0..len)
            .map(|j| ((pos * 37 + j * 11) as f64).cos() * 512.0)
            .collect()
    }

    fn encode(codec: &dyn ErasureCodec, data: &[Vec<f64>], len: usize) -> Vec<Vec<f64>> {
        (0..codec.parity_count())
            .map(|role| {
                let mut acc = kernels::zeroed(len);
                for (pos, d) in data.iter().enumerate() {
                    let c = codec.contrib(role, pos, d, KernelConfig::serial());
                    kernels::xor_accumulate(&mut acc, &c, KernelConfig::serial());
                }
                acc
            })
            .collect()
    }

    /// Syndrome of `role` with the stripes in `erased` missing.
    fn syndrome(
        codec: &dyn ErasureCodec,
        data: &[Vec<f64>],
        parity: &[f64],
        role: usize,
        erased: &[usize],
        len: usize,
    ) -> Vec<f64> {
        let cfg = KernelConfig::serial();
        let mut acc = kernels::zeroed(len);
        kernels::xor_accumulate(&mut acc, parity, cfg);
        for (pos, d) in data.iter().enumerate() {
            if !erased.contains(&pos) {
                let c = codec.cancel_contrib(role, pos, d, cfg);
                kernels::xor_accumulate(&mut acc, &c, cfg);
            }
        }
        acc
    }

    fn subsets(n: usize, m: usize) -> Vec<Vec<usize>> {
        if m == 0 {
            return vec![vec![]];
        }
        let mut out = Vec::new();
        for first in 0..n {
            for mut rest in subsets(n, m - 1) {
                if rest.iter().all(|&r| r > first) {
                    let mut s = vec![first];
                    s.append(&mut rest);
                    out.push(s);
                }
            }
        }
        out
    }

    #[test]
    fn rs3_round_trips_every_erasure_triple_with_every_role_subset() {
        let codec = CodecSpec::rs(3).resolve();
        assert_eq!(codec.parity_count(), 3);
        assert_eq!(codec.wire(), Wire::Bits);
        let (k, len) = (5, 9);
        let data: Vec<Vec<f64>> = (0..k).map(|p| stripe(p, len)).collect();
        let parity = encode(codec, &data, len);
        for e in 1..=3usize {
            for erased in subsets(k, e) {
                // every e-subset of surviving roles must decode
                for roles in subsets(3, e) {
                    let syn: Vec<(usize, Vec<f64>)> = roles
                        .iter()
                        .map(|&r| (r, syndrome(codec, &data, &parity[r], r, &erased, len)))
                        .collect();
                    let got = codec.solve(&erased, &syn, KernelConfig::serial());
                    for (g, &x) in got.iter().zip(&erased) {
                        assert!(
                            g.iter()
                                .zip(&data[x])
                                .all(|(a, b)| a.to_bits() == b.to_bits()),
                            "erased {erased:?} roles {roles:?} pos {x}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn rs_m_scales_to_larger_parity_counts() {
        for m in [1usize, 2, 4, 5] {
            let codec = CodecSpec::rs(m).resolve();
            let (k, len) = (6, 5);
            let data: Vec<Vec<f64>> = (0..k).map(|p| stripe(p, len)).collect();
            let parity = encode(codec, &data, len);
            let erased: Vec<usize> = (0..m.min(k)).collect();
            let syn: Vec<(usize, Vec<f64>)> = (0..erased.len())
                .map(|r| (r, syndrome(codec, &data, &parity[r], r, &erased, len)))
                .collect();
            let got = codec.solve(&erased, &syn, KernelConfig::serial());
            for (g, &x) in got.iter().zip(&erased) {
                assert!(
                    g.iter()
                        .zip(&data[x])
                        .all(|(a, b)| a.to_bits() == b.to_bits()),
                    "m={m} pos {x}"
                );
            }
        }
    }

    #[test]
    fn resolve_caches_one_instance_per_m() {
        let a = CodecSpec::rs(3).resolve();
        let b = CodecSpec::rs(3).resolve();
        assert!(std::ptr::eq(
            a as *const dyn ErasureCodec as *const u8,
            b as *const dyn ErasureCodec as *const u8
        ));
        assert_eq!(a.name(), "RS(m=3)");
        assert_eq!(CodecSpec::rs(7).name(), "RS(m=7)");
    }

    #[test]
    #[should_panic(expected = "corrects at most 3 erasures")]
    fn rs3_refuses_four_erasures() {
        let codec = CodecSpec::rs(3).resolve();
        codec.solve(
            &[0, 1, 2, 3],
            &[(0, vec![0.0]), (1, vec![0.0]), (2, vec![0.0])],
            KernelConfig::serial(),
        );
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Invertibility of the decode system for arbitrary erased
            /// positions and surviving roles — the Cauchy property the
            /// whole codec rests on.
            #[test]
            fn every_decode_submatrix_is_invertible(
                m in 1usize..9,
                seed in any::<u64>(),
            ) {
                let codec = RsCodec::new(m);
                let k = 12usize;
                // sample e, then e distinct erased positions and e roles
                let mut s = seed;
                let mut next = || {
                    s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                    (s >> 33) as usize
                };
                let e = 1 + next() % m;
                let mut erased: Vec<usize> = Vec::new();
                while erased.len() < e.min(k) {
                    let p = next() % k;
                    if !erased.contains(&p) {
                        erased.push(p);
                    }
                }
                erased.sort_unstable();
                let mut roles: Vec<usize> = Vec::new();
                while roles.len() < erased.len() {
                    let r = next() % m;
                    if !roles.contains(&r) {
                        roles.push(r);
                    }
                }
                let mat = codec.submatrix(&roles, &erased);
                prop_assert!(
                    gf256::invert_matrix(&mat).is_some(),
                    "singular submatrix: m={} roles={:?} erased={:?}", m, roles, erased
                );
            }

            /// All generator coefficients are nonzero (x/y ranges are
            /// disjoint) and distinct roles give distinct rows.
            #[test]
            fn coefficients_are_nonzero_and_rows_distinct(
                m in 2usize..9,
                pos in 0usize..64,
            ) {
                let codec = RsCodec::new(m);
                for role in 0..m {
                    prop_assert_ne!(codec.coeff(role, pos), 0);
                }
                for r1 in 0..m {
                    for r2 in (r1 + 1)..m {
                        prop_assert_ne!(codec.coeff(r1, pos), codec.coeff(r2, pos));
                    }
                }
            }
        }
    }
}
