//! Runtime-dispatched byte-level backends for the GF(2^8) and CRC-32C
//! hot loops.
//!
//! The erasure codecs spend almost all of their time in two byte
//! streams — `buf[i] = c·buf[i]` / `acc[i] ^= c·x[i]` over GF(2^8) for
//! the Reed–Solomon parities, and the CRC-32C walk of the scrub patrol.
//! Both have well-known data-parallel formulations, so this module keeps
//! one *reference* implementation (the full 256-entry multiplication row
//! / the byte-at-a-time CRC table) and a set of accelerated backends:
//!
//! * **GF(2^8)**: the 4-bit split-table trick — `c·b` for any byte `b`
//!   is `LO[b & 0xF] ⊕ HI[b >> 4]` with two 16-entry tables, which is
//!   exactly one `pshufb` pair per 16 (SSSE3) or 32 (AVX2) bytes. The
//!   portable variant runs the same split-table math byte-wise, so every
//!   backend computes the identical function.
//! * **CRC-32C**: slice-by-8 (eight interleaved tables, one 64-bit load
//!   per step) and the SSE4.2 `crc32` instruction, which implements this
//!   exact (Castagnoli, reflected) polynomial in hardware.
//!
//! Dispatch is *data-independent*: a backend is chosen once per kernel
//! call from [`SimdMode`] (carried by `KernelConfig`, defaulted from the
//! `SKT_KERNEL_SIMD` environment variable) plus one-time CPU feature
//! detection. All backends are bit-for-bit equivalent — the equivalence
//! proptests drive every available backend against the scalar reference
//! over arbitrary lengths, values and (mis)alignments, and CI runs the
//! whole suite once per forced path.

use crate::gf256;

/// How the byte-level kernels pick their implementation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SimdMode {
    /// Probe the CPU once and use the fastest available backend.
    #[default]
    Auto,
    /// Force the scalar reference path (`SKT_KERNEL_SIMD=0`).
    ForceScalar,
    /// Force the accelerated path (`SKT_KERNEL_SIMD=1`): `pshufb` /
    /// hardware CRC where the CPU has them, the portable split-table and
    /// slice-by-8 variants otherwise.
    ForceSimd,
}

impl SimdMode {
    /// Parse the `SKT_KERNEL_SIMD` convention: `0`/`off` forces scalar,
    /// `1`/`on` forces SIMD, anything else (or unset) is [`SimdMode::Auto`].
    #[must_use]
    pub fn from_env_str(v: &str) -> SimdMode {
        match v.trim() {
            "0" | "off" | "false" => SimdMode::ForceScalar,
            "1" | "on" | "true" => SimdMode::ForceSimd,
            _ => SimdMode::Auto,
        }
    }
}

/// A GF(2^8) scale / multiply-accumulate implementation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GfBackend {
    /// Full 256-entry multiplication row, one lookup per byte — the
    /// reference the accelerated paths are diffed against.
    Scalar,
    /// 4-bit split tables (two 16-entry lookups + XOR per byte); no CPU
    /// features needed.
    Portable,
    /// SSSE3 `pshufb`: 16 bytes per shuffle pair.
    Ssse3,
    /// AVX2 `vpshufb`: 32 bytes per shuffle pair.
    Avx2,
}

impl GfBackend {
    /// The backend [`SimdMode`] resolves to on this machine.
    #[must_use]
    pub fn select(mode: SimdMode) -> GfBackend {
        match mode {
            SimdMode::ForceScalar => GfBackend::Scalar,
            SimdMode::Auto | SimdMode::ForceSimd => GfBackend::best_accelerated(),
        }
    }

    /// The fastest accelerated backend the CPU supports (never
    /// [`GfBackend::Scalar`]; the portable split-table at worst).
    #[must_use]
    pub fn best_accelerated() -> GfBackend {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2") {
                return GfBackend::Avx2;
            }
            if std::arch::is_x86_feature_detected!("ssse3") {
                return GfBackend::Ssse3;
            }
        }
        GfBackend::Portable
    }

    /// Every backend runnable on this machine (the equivalence tests
    /// sweep all of them against [`GfBackend::Scalar`]).
    #[must_use]
    pub fn available() -> Vec<GfBackend> {
        let mut v = vec![GfBackend::Scalar, GfBackend::Portable];
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("ssse3") {
                v.push(GfBackend::Ssse3);
            }
            if std::arch::is_x86_feature_detected!("avx2") {
                v.push(GfBackend::Avx2);
            }
        }
        v
    }
}

/// A CRC-32C implementation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CrcBackend {
    /// Byte-at-a-time table walk — the reference.
    Table,
    /// Slice-by-8: one 64-bit load and eight interleaved table lookups
    /// per step; no CPU features needed.
    SliceBy8,
    /// SSE4.2 `crc32` instruction (the polynomial is the instruction's).
    Hardware,
}

impl CrcBackend {
    /// The backend [`SimdMode`] resolves to on this machine.
    #[must_use]
    pub fn select(mode: SimdMode) -> CrcBackend {
        match mode {
            SimdMode::ForceScalar => CrcBackend::Table,
            SimdMode::Auto | SimdMode::ForceSimd => CrcBackend::best_accelerated(),
        }
    }

    /// The fastest accelerated CRC backend the CPU supports.
    #[must_use]
    pub fn best_accelerated() -> CrcBackend {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("sse4.2") {
                return CrcBackend::Hardware;
            }
        }
        CrcBackend::SliceBy8
    }

    /// Every CRC backend runnable on this machine.
    #[must_use]
    pub fn available() -> Vec<CrcBackend> {
        let mut v = vec![CrcBackend::Table, CrcBackend::SliceBy8];
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("sse4.2") {
                v.push(CrcBackend::Hardware);
            }
        }
        v
    }
}

/// Little-endian-order byte view of an `f64` buffer. GF(2^8) operates
/// on every byte independently, so the view is endian-agnostic for the
/// GF kernels; the CRC walk additionally needs true LE order and guards
/// itself with `cfg!(target_endian)`.
#[must_use]
pub fn f64_bytes(buf: &[f64]) -> &[u8] {
    // Safety: f64 has no padding and every byte pattern is a valid u8;
    // alignment only decreases.
    unsafe { std::slice::from_raw_parts(buf.as_ptr().cast(), std::mem::size_of_val(buf)) }
}

/// Mutable byte view of an `f64` buffer (see [`f64_bytes`]).
#[must_use]
pub fn f64_bytes_mut(buf: &mut [f64]) -> &mut [u8] {
    // Safety: as in `f64_bytes`; every byte pattern is also a valid f64.
    unsafe { std::slice::from_raw_parts_mut(buf.as_mut_ptr().cast(), std::mem::size_of_val(buf)) }
}

/// The two 16-entry split tables of `c`: `LO[i] = c·i`,
/// `HI[i] = c·(i << 4)`, so `c·b = LO[b & 0xF] ⊕ HI[b >> 4]` by the
/// distributive law over the nibble decomposition `b = hi·16 ⊕ lo`.
#[must_use]
pub fn nibble_tables(c: u8) -> ([u8; 16], [u8; 16]) {
    let mut lo = [0u8; 16];
    let mut hi = [0u8; 16];
    for i in 0..16u8 {
        lo[i as usize] = gf256::mul(c, i);
        hi[i as usize] = gf256::mul(c, i << 4);
    }
    (lo, hi)
}

fn scale_scalar(buf: &mut [u8], c: u8) {
    let row = gf256::mul_table(c);
    for b in buf.iter_mut() {
        *b = row[*b as usize];
    }
}

fn mac_scalar(acc: &mut [u8], x: &[u8], c: u8) {
    let row = gf256::mul_table(c);
    for (a, b) in acc.iter_mut().zip(x) {
        *a ^= row[*b as usize];
    }
}

fn scale_portable(buf: &mut [u8], lo: &[u8; 16], hi: &[u8; 16]) {
    for b in buf.iter_mut() {
        *b = lo[(*b & 0x0F) as usize] ^ hi[(*b >> 4) as usize];
    }
}

fn mac_portable(acc: &mut [u8], x: &[u8], lo: &[u8; 16], hi: &[u8; 16]) {
    for (a, b) in acc.iter_mut().zip(x) {
        *a ^= lo[(*b & 0x0F) as usize] ^ hi[(*b >> 4) as usize];
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::nibble_tables;
    use std::arch::x86_64::*;

    #[target_feature(enable = "ssse3")]
    pub unsafe fn scale_ssse3(buf: &mut [u8], c: u8) {
        let (lo, hi) = nibble_tables(c);
        let tlo = _mm_loadu_si128(lo.as_ptr().cast());
        let thi = _mm_loadu_si128(hi.as_ptr().cast());
        let mask = _mm_set1_epi8(0x0F);
        let mut chunks = buf.chunks_exact_mut(16);
        for ch in &mut chunks {
            let v = _mm_loadu_si128(ch.as_ptr().cast());
            let ln = _mm_and_si128(v, mask);
            let hn = _mm_and_si128(_mm_srli_epi64(v, 4), mask);
            let r = _mm_xor_si128(_mm_shuffle_epi8(tlo, ln), _mm_shuffle_epi8(thi, hn));
            _mm_storeu_si128(ch.as_mut_ptr().cast(), r);
        }
        super::scale_portable(chunks.into_remainder(), &lo, &hi);
    }

    #[target_feature(enable = "ssse3")]
    pub unsafe fn mac_ssse3(acc: &mut [u8], x: &[u8], c: u8) {
        let (lo, hi) = nibble_tables(c);
        let tlo = _mm_loadu_si128(lo.as_ptr().cast());
        let thi = _mm_loadu_si128(hi.as_ptr().cast());
        let mask = _mm_set1_epi8(0x0F);
        let mut a16 = acc.chunks_exact_mut(16);
        let mut x16 = x.chunks_exact(16);
        for (a, b) in (&mut a16).zip(&mut x16) {
            let v = _mm_loadu_si128(b.as_ptr().cast());
            let ln = _mm_and_si128(v, mask);
            let hn = _mm_and_si128(_mm_srli_epi64(v, 4), mask);
            let prod = _mm_xor_si128(_mm_shuffle_epi8(tlo, ln), _mm_shuffle_epi8(thi, hn));
            let cur = _mm_loadu_si128(a.as_ptr().cast());
            _mm_storeu_si128(a.as_mut_ptr().cast(), _mm_xor_si128(cur, prod));
        }
        super::mac_portable(a16.into_remainder(), x16.remainder(), &lo, &hi);
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn scale_avx2(buf: &mut [u8], c: u8) {
        let (lo, hi) = nibble_tables(c);
        let tlo = _mm256_broadcastsi128_si256(_mm_loadu_si128(lo.as_ptr().cast()));
        let thi = _mm256_broadcastsi128_si256(_mm_loadu_si128(hi.as_ptr().cast()));
        let mask = _mm256_set1_epi8(0x0F);
        let mut chunks = buf.chunks_exact_mut(32);
        for ch in &mut chunks {
            let v = _mm256_loadu_si256(ch.as_ptr().cast());
            let ln = _mm256_and_si256(v, mask);
            let hn = _mm256_and_si256(_mm256_srli_epi64(v, 4), mask);
            let r = _mm256_xor_si256(_mm256_shuffle_epi8(tlo, ln), _mm256_shuffle_epi8(thi, hn));
            _mm256_storeu_si256(ch.as_mut_ptr().cast(), r);
        }
        super::scale_portable(chunks.into_remainder(), &lo, &hi);
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn mac_avx2(acc: &mut [u8], x: &[u8], c: u8) {
        let (lo, hi) = nibble_tables(c);
        let tlo = _mm256_broadcastsi128_si256(_mm_loadu_si128(lo.as_ptr().cast()));
        let thi = _mm256_broadcastsi128_si256(_mm_loadu_si128(hi.as_ptr().cast()));
        let mask = _mm256_set1_epi8(0x0F);
        let mut a32 = acc.chunks_exact_mut(32);
        let mut x32 = x.chunks_exact(32);
        for (a, b) in (&mut a32).zip(&mut x32) {
            let v = _mm256_loadu_si256(b.as_ptr().cast());
            let ln = _mm256_and_si256(v, mask);
            let hn = _mm256_and_si256(_mm256_srli_epi64(v, 4), mask);
            let prod = _mm256_xor_si256(_mm256_shuffle_epi8(tlo, ln), _mm256_shuffle_epi8(thi, hn));
            let cur = _mm256_loadu_si256(a.as_ptr().cast());
            _mm256_storeu_si256(a.as_mut_ptr().cast(), _mm256_xor_si256(cur, prod));
        }
        super::mac_portable(a32.into_remainder(), x32.remainder(), &lo, &hi);
    }

    #[target_feature(enable = "sse4.2")]
    pub unsafe fn crc32c_hw(crc: u32, bytes: &[u8]) -> u32 {
        let mut c = u64::from(crc);
        let mut chunks = bytes.chunks_exact(8);
        for ch in &mut chunks {
            c = _mm_crc32_u64(c, u64::from_le_bytes(ch.try_into().unwrap()));
        }
        let mut c = c as u32;
        for &b in chunks.remainder() {
            c = _mm_crc32_u8(c, b);
        }
        c
    }
}

/// `buf[i] := c · buf[i]` over GF(2^8), on the chosen backend.
pub fn gf_scale_bytes(buf: &mut [u8], c: u8, backend: GfBackend) {
    if c == 1 {
        return;
    }
    if c == 0 {
        buf.fill(0);
        return;
    }
    match backend {
        GfBackend::Scalar => scale_scalar(buf, c),
        GfBackend::Portable => {
            let (lo, hi) = nibble_tables(c);
            scale_portable(buf, &lo, &hi);
        }
        GfBackend::Ssse3 | GfBackend::Avx2 => {
            #[cfg(target_arch = "x86_64")]
            // Safety: `select`/`available` only surface these backends
            // after `is_x86_feature_detected!` confirmed the feature.
            unsafe {
                if backend == GfBackend::Avx2 {
                    x86::scale_avx2(buf, c);
                } else {
                    x86::scale_ssse3(buf, c);
                }
            }
            #[cfg(not(target_arch = "x86_64"))]
            {
                let (lo, hi) = nibble_tables(c);
                scale_portable(buf, &lo, &hi);
            }
        }
    }
}

/// `acc[i] ^= c · x[i]` over GF(2^8), on the chosen backend.
pub fn gf_mac_bytes(acc: &mut [u8], x: &[u8], c: u8, backend: GfBackend) {
    assert_eq!(acc.len(), x.len(), "gf_mac_bytes: length mismatch");
    if c == 0 {
        return;
    }
    match backend {
        GfBackend::Scalar => mac_scalar(acc, x, c),
        GfBackend::Portable => {
            let (lo, hi) = nibble_tables(c);
            mac_portable(acc, x, &lo, &hi);
        }
        GfBackend::Ssse3 | GfBackend::Avx2 => {
            #[cfg(target_arch = "x86_64")]
            // Safety: backend presence implies the detected CPU feature.
            unsafe {
                if backend == GfBackend::Avx2 {
                    x86::mac_avx2(acc, x, c);
                } else {
                    x86::mac_ssse3(acc, x, c);
                }
            }
            #[cfg(not(target_arch = "x86_64"))]
            {
                let (lo, hi) = nibble_tables(c);
                mac_portable(acc, x, &lo, &hi);
            }
        }
    }
}

/// The eight interleaved slice-by-8 tables; `CRC_TABLES[0]` is the plain
/// byte-at-a-time table, `CRC_TABLES[k][v]` advances `v` through `k`
/// additional zero bytes.
static CRC_TABLES: [[u32; 256]; 8] = {
    let mut t = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut k = 0;
        while k < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ crate::crc::POLY
            } else {
                crc >> 1
            };
            k += 1;
        }
        t[0][i] = crc;
        i += 1;
    }
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = t[k - 1][i];
            t[k][i] = (prev >> 8) ^ t[0][(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    t
};

fn crc32c_table(mut crc: u32, bytes: &[u8]) -> u32 {
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLES[0][((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    crc
}

fn crc32c_slice8(mut crc: u32, bytes: &[u8]) -> u32 {
    let mut chunks = bytes.chunks_exact(8);
    for ch in &mut chunks {
        let low = crc ^ u32::from_le_bytes(ch[0..4].try_into().unwrap());
        crc = CRC_TABLES[7][(low & 0xFF) as usize]
            ^ CRC_TABLES[6][((low >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[5][((low >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[4][(low >> 24) as usize]
            ^ CRC_TABLES[3][ch[4] as usize]
            ^ CRC_TABLES[2][ch[5] as usize]
            ^ CRC_TABLES[1][ch[6] as usize]
            ^ CRC_TABLES[0][ch[7] as usize];
    }
    crc32c_table(crc, chunks.remainder())
}

/// Advance an in-flight (pre-inverted) CRC-32C state over `bytes` on the
/// chosen backend. All backends implement the identical polynomial, so
/// the result is backend-independent bit-for-bit.
#[must_use]
pub fn crc32c_update(crc: u32, bytes: &[u8], backend: CrcBackend) -> u32 {
    match backend {
        CrcBackend::Table => crc32c_table(crc, bytes),
        CrcBackend::SliceBy8 => crc32c_slice8(crc, bytes),
        CrcBackend::Hardware => {
            #[cfg(target_arch = "x86_64")]
            // Safety: backend presence implies SSE4.2 was detected.
            unsafe {
                x86::crc32c_hw(crc, bytes)
            }
            #[cfg(not(target_arch = "x86_64"))]
            crc32c_slice8(crc, bytes)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bytes(len: usize, salt: u64) -> Vec<u8> {
        (0..len)
            .map(|i| {
                let x = (i as u64)
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(salt.wrapping_mul(0xD134_2543_DE82_EF95));
                (x >> 56) as u8
            })
            .collect()
    }

    #[test]
    fn nibble_tables_reassemble_the_full_row() {
        for c in [0u8, 1, 2, 29, 143, 255] {
            let (lo, hi) = nibble_tables(c);
            for b in 0..=255u8 {
                assert_eq!(
                    lo[(b & 0x0F) as usize] ^ hi[(b >> 4) as usize],
                    gf256::mul(c, b),
                    "c={c} b={b}"
                );
            }
        }
    }

    #[test]
    fn every_gf_backend_matches_scalar_at_awkward_lengths() {
        // 0, sub-16-byte tails, exactly one vector, vector+tail, large.
        for len in [0usize, 1, 7, 15, 16, 17, 31, 32, 33, 63, 64, 65, 1000] {
            let base = bytes(len, 1);
            let x = bytes(len, 2);
            for c in [0u8, 1, 2, 29, 254, 255] {
                let mut want_scale = base.clone();
                gf_scale_bytes(&mut want_scale, c, GfBackend::Scalar);
                let mut want_mac = base.clone();
                gf_mac_bytes(&mut want_mac, &x, c, GfBackend::Scalar);
                for backend in GfBackend::available() {
                    let mut got = base.clone();
                    gf_scale_bytes(&mut got, c, backend);
                    assert_eq!(got, want_scale, "scale len={len} c={c} {backend:?}");
                    let mut got = base.clone();
                    gf_mac_bytes(&mut got, &x, c, backend);
                    assert_eq!(got, want_mac, "mac len={len} c={c} {backend:?}");
                }
            }
        }
    }

    #[test]
    fn every_crc_backend_matches_table_at_awkward_lengths() {
        for len in [0usize, 1, 3, 7, 8, 9, 15, 16, 17, 63, 64, 65, 1000] {
            let d = bytes(len, 3);
            let want = crc32c_update(!0, &d, CrcBackend::Table);
            for backend in CrcBackend::available() {
                assert_eq!(
                    crc32c_update(!0, &d, backend),
                    want,
                    "len={len} {backend:?}"
                );
            }
        }
    }

    #[test]
    fn selection_honours_the_mode() {
        assert_eq!(GfBackend::select(SimdMode::ForceScalar), GfBackend::Scalar);
        assert_ne!(GfBackend::select(SimdMode::ForceSimd), GfBackend::Scalar);
        assert_eq!(CrcBackend::select(SimdMode::ForceScalar), CrcBackend::Table);
        assert_ne!(CrcBackend::select(SimdMode::ForceSimd), CrcBackend::Table);
        assert_eq!(
            GfBackend::select(SimdMode::Auto),
            GfBackend::best_accelerated()
        );
    }

    #[test]
    fn env_convention_parses() {
        assert_eq!(SimdMode::from_env_str("0"), SimdMode::ForceScalar);
        assert_eq!(SimdMode::from_env_str("off"), SimdMode::ForceScalar);
        assert_eq!(SimdMode::from_env_str(" 1 "), SimdMode::ForceSimd);
        assert_eq!(SimdMode::from_env_str("on"), SimdMode::ForceSimd);
        assert_eq!(SimdMode::from_env_str("auto"), SimdMode::Auto);
    }

    #[test]
    fn f64_byte_views_round_trip() {
        let mut buf: Vec<f64> = (0..9).map(|i| (i as f64).exp()).collect();
        let orig = buf.clone();
        let view = f64_bytes(&buf);
        assert_eq!(view.len(), 72);
        let copy: Vec<u8> = view.to_vec();
        let view_mut = f64_bytes_mut(&mut buf);
        view_mut.copy_from_slice(&copy);
        assert!(buf
            .iter()
            .zip(&orig)
            .all(|(a, b)| a.to_bits() == b.to_bits()));
    }
}
