//! Stripe/slot geometry of the group encoding (paper Figure 1),
//! generalized to `m` parity stripes per slot.
//!
//! A group has `N` ranks and `N` *slots*. With a codec of parity count
//! `m`, rank `r`'s local data is split into `N-m` stripes and the `m`
//! parity stripes of slot `s` live round-robin on the ranks
//! `{s, s+1, …, s+m-1} (mod N)` — role `i` of slot `s` on rank
//! `(s+i) mod N`. A rank therefore guards exactly one parity role of
//! `m` different slots and contributes data to the remaining `N-m`
//! slots, so encoding traffic stays spread over all ranks (the
//! rotating-parity placement of RAID-5 at `m = 1`, RAID-6 at `m = 2`).
//!
//! At `m = 1` this reduces exactly to the paper's layout: stripes in
//! the slots `{0..N} \ {r}`, parity of slot `r` on rank `r`.

use std::ops::Range;

/// Geometry for one group member's data.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GroupLayout {
    n: usize,
    m: usize,
    data_len: usize,
    stripe_len: usize,
}

impl GroupLayout {
    /// Single-parity layout (`m = 1`) for a group of `n >= 2` ranks each
    /// holding `data_len` elements. Data is padded (conceptually with
    /// zeros) to a multiple of `n - 1`.
    #[must_use]
    pub fn new(n: usize, data_len: usize) -> Self {
        Self::new_with_parity(n, 1, data_len)
    }

    /// Layout with `m >= 1` parity stripes per slot for a group of
    /// `n >= m + 1` ranks each holding `data_len` elements. Data is
    /// padded (conceptually with zeros) to a multiple of `n - m`.
    #[must_use]
    pub fn new_with_parity(n: usize, m: usize, data_len: usize) -> Self {
        assert!(m >= 1, "at least one parity stripe");
        assert!(
            n > m,
            "group must have at least m + 1 = {} ranks, got {n}",
            m + 1
        );
        let stripe_len = data_len.div_ceil(n - m);
        GroupLayout {
            n,
            m,
            data_len,
            stripe_len,
        }
    }

    /// Group size `N`.
    #[must_use]
    pub fn group_size(&self) -> usize {
        self.n
    }

    /// Parity stripes per slot, `m` (the codec's correction capability).
    #[must_use]
    pub fn parity_count(&self) -> usize {
        self.m
    }

    /// Unpadded per-rank data length.
    #[must_use]
    pub fn data_len(&self) -> usize {
        self.data_len
    }

    /// Stripe length (= length of one checksum stripe):
    /// `ceil(data_len / (N-m))`.
    #[must_use]
    pub fn stripe_len(&self) -> usize {
        self.stripe_len
    }

    /// Padded data length every rank must allocate: `stripe_len * (N-m)`.
    #[must_use]
    pub fn padded_len(&self) -> usize {
        self.stripe_len * (self.n - self.m)
    }

    /// Number of data stripes per rank: `N-m`.
    #[must_use]
    pub fn stripes_per_rank(&self) -> usize {
        self.n - self.m
    }

    /// Total parity elements a rank stores: one stripe per role,
    /// `m * stripe_len`.
    #[must_use]
    pub fn parity_len(&self) -> usize {
        self.m * self.stripe_len
    }

    /// Element range of parity role `i` within a rank's parity segment.
    #[must_use]
    pub fn parity_range(&self, role: usize) -> Range<usize> {
        assert!(role < self.m);
        role * self.stripe_len..(role + 1) * self.stripe_len
    }

    /// Whether rank `r` holds a parity role (rather than data) in slot
    /// `s`: true iff `r ∈ {s, …, s+m-1} (mod N)`.
    #[must_use]
    pub fn is_parity_owner(&self, r: usize, s: usize) -> bool {
        assert!(r < self.n && s < self.n);
        (r + self.n - s) % self.n < self.m
    }

    /// Whether rank `r` contributes a *data* stripe to slot `s`.
    #[must_use]
    pub fn contributes(&self, r: usize, s: usize) -> bool {
        !self.is_parity_owner(r, s)
    }

    /// The parity role rank `r` plays in slot `s`, or `None` when it is
    /// a data contributor there.
    #[must_use]
    pub fn parity_role(&self, r: usize, s: usize) -> Option<usize> {
        assert!(r < self.n && s < self.n);
        let i = (r + self.n - s) % self.n;
        (i < self.m).then_some(i)
    }

    /// The rank storing parity role `i` of slot `s`: `(s + i) mod N`.
    #[must_use]
    pub fn parity_owner(&self, s: usize, role: usize) -> usize {
        assert!(s < self.n && role < self.m);
        (s + role) % self.n
    }

    /// The slot whose parity role `i` rank `r` stores: `(r - i) mod N`.
    #[must_use]
    pub fn parity_slot(&self, r: usize, role: usize) -> usize {
        assert!(r < self.n && role < self.m);
        (r + self.n - role) % self.n
    }

    /// Slot that rank `r`'s data stripe `k` (`k < N-m`) occupies: the
    /// `k`-th slot, in ascending order, that `r` contributes to.
    #[must_use]
    pub fn slot_of_stripe(&self, r: usize, k: usize) -> usize {
        assert!(r < self.n && k < self.n - self.m);
        (0..self.n)
            .filter(|&s| self.contributes(r, s))
            .nth(k)
            .expect("k < stripes_per_rank")
    }

    /// Data stripe of rank `r` living in slot `s`, or `None` when rank
    /// `r` holds a parity role of `s` instead.
    #[must_use]
    pub fn stripe_of_slot(&self, r: usize, s: usize) -> Option<usize> {
        assert!(r < self.n && s < self.n);
        if !self.contributes(r, s) {
            return None;
        }
        Some((0..s).filter(|&t| self.contributes(r, t)).count())
    }

    /// Codeword position of rank `r` within slot `s` — its index among
    /// the slot's contributors in ascending rank order — or `None` when
    /// `r` does not contribute data to `s`. This is the `i` of the
    /// codec's `g^i`-style coefficients.
    #[must_use]
    pub fn codeword_pos(&self, r: usize, s: usize) -> Option<usize> {
        if !self.contributes(r, s) {
            return None;
        }
        Some((0..r).filter(|&t| self.contributes(t, s)).count())
    }

    /// Element range of stripe `k` within the padded data buffer.
    #[must_use]
    pub fn stripe_range(&self, k: usize) -> Range<usize> {
        assert!(k < self.n - self.m);
        k * self.stripe_len..(k + 1) * self.stripe_len
    }

    /// Borrow stripe `k` from a padded data buffer.
    pub fn stripe<'a>(&self, data: &'a [f64], k: usize) -> &'a [f64] {
        assert_eq!(data.len(), self.padded_len(), "data must be padded");
        &data[self.stripe_range(k)]
    }

    /// The ranks contributing data to slot `s`, in ascending order (the
    /// codeword order).
    pub fn contributors(&self, s: usize) -> impl Iterator<Item = usize> + '_ {
        assert!(s < self.n);
        (0..self.n).filter(move |&r| self.contributes(r, s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stripe_len_is_ceil() {
        let l = GroupLayout::new(4, 10);
        assert_eq!(l.stripe_len(), 4); // ceil(10/3)
        assert_eq!(l.padded_len(), 12);
        let exact = GroupLayout::new(4, 9);
        assert_eq!(exact.stripe_len(), 3);
        assert_eq!(exact.padded_len(), 9);
    }

    #[test]
    fn checksum_is_fraction_of_data() {
        // A checksum is 1/(N-1) of the (padded) data — the memory claim
        // behind Table 1.
        let l = GroupLayout::new(16, 15 * 1000);
        assert_eq!(l.stripe_len() * 15, l.padded_len());
        assert_eq!(l.stripe_len(), 1000);
    }

    #[test]
    fn slot_assignment_skips_own_rank() {
        let l = GroupLayout::new(4, 9);
        // rank 1's stripes occupy slots 0, 2, 3
        assert_eq!(l.slot_of_stripe(1, 0), 0);
        assert_eq!(l.slot_of_stripe(1, 1), 2);
        assert_eq!(l.slot_of_stripe(1, 2), 3);
        // inverse
        assert_eq!(l.stripe_of_slot(1, 0), Some(0));
        assert_eq!(l.stripe_of_slot(1, 1), None);
        assert_eq!(l.stripe_of_slot(1, 2), Some(1));
        assert_eq!(l.stripe_of_slot(1, 3), Some(2));
    }

    #[test]
    fn slot_and_stripe_are_inverse_bijections() {
        for n in 2..=8 {
            let l = GroupLayout::new(n, 21);
            for r in 0..n {
                for k in 0..n - 1 {
                    let s = l.slot_of_stripe(r, k);
                    assert_ne!(s, r, "a rank never stores data in its parity slot");
                    assert_eq!(l.stripe_of_slot(r, s), Some(k));
                }
                assert_eq!(l.stripe_of_slot(r, r), None);
            }
        }
    }

    #[test]
    fn every_slot_has_n_minus_1_contributors() {
        let l = GroupLayout::new(5, 8);
        for s in 0..5 {
            let c: Vec<usize> = l.contributors(s).collect();
            assert_eq!(c.len(), 4);
            assert!(!c.contains(&s));
        }
    }

    #[test]
    fn stripe_slices_partition_padded_data() {
        let l = GroupLayout::new(3, 5); // stripe_len 3, padded 6
        let data: Vec<f64> = (0..6).map(|i| i as f64).collect();
        assert_eq!(l.stripe(&data, 0), &[0.0, 1.0, 2.0]);
        assert_eq!(l.stripe(&data, 1), &[3.0, 4.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "padded")]
    fn unpadded_data_rejected() {
        let l = GroupLayout::new(3, 5);
        let data = vec![0.0; 5];
        l.stripe(&data, 0);
    }

    #[test]
    fn single_parity_owner_is_the_slot_rank() {
        // m = 1 must reproduce the paper's placement exactly.
        let l = GroupLayout::new(6, 10);
        assert_eq!(l.parity_count(), 1);
        for s in 0..6 {
            assert_eq!(l.parity_owner(s, 0), s);
            assert_eq!(l.parity_slot(s, 0), s);
            assert_eq!(l.parity_role(s, s), Some(0));
        }
        assert_eq!(l.parity_len(), l.stripe_len());
        assert_eq!(l.parity_range(0), 0..l.stripe_len());
    }

    #[test]
    fn dual_parity_roles_rotate_round_robin() {
        let l = GroupLayout::new_with_parity(5, 2, 12);
        assert_eq!(l.stripes_per_rank(), 3);
        assert_eq!(l.stripe_len(), 4); // ceil(12/3)
        assert_eq!(l.padded_len(), 12);
        assert_eq!(l.parity_len(), 8);
        for s in 0..5 {
            // role 0 (P) on rank s, role 1 (Q) on rank s+1
            assert_eq!(l.parity_owner(s, 0), s);
            assert_eq!(l.parity_owner(s, 1), (s + 1) % 5);
            let c: Vec<usize> = l.contributors(s).collect();
            assert_eq!(c.len(), 3);
            assert!(!c.contains(&s));
            assert!(!c.contains(&((s + 1) % 5)));
        }
        // rank 2 guards P of slot 2 and Q of slot 1
        assert_eq!(l.parity_slot(2, 0), 2);
        assert_eq!(l.parity_slot(2, 1), 1);
        assert_eq!(l.parity_role(2, 2), Some(0));
        assert_eq!(l.parity_role(2, 1), Some(1));
        assert_eq!(l.parity_role(2, 0), None);
    }

    #[test]
    fn dual_parity_stripe_maps_are_inverse_bijections() {
        for n in 3..=8 {
            let l = GroupLayout::new_with_parity(n, 2, 30);
            for r in 0..n {
                let mut slots = Vec::new();
                for k in 0..l.stripes_per_rank() {
                    let s = l.slot_of_stripe(r, k);
                    assert!(l.contributes(r, s));
                    assert_eq!(l.stripe_of_slot(r, s), Some(k));
                    slots.push(s);
                }
                // data slots + 2 parity slots cover every slot exactly once
                slots.push(l.parity_slot(r, 0));
                slots.push(l.parity_slot(r, 1));
                slots.sort_unstable();
                assert_eq!(slots, (0..n).collect::<Vec<_>>(), "rank {r}");
            }
        }
    }

    #[test]
    fn codeword_positions_are_dense_and_ordered() {
        for (n, m) in [(4, 1), (5, 2), (7, 2), (4, 3)] {
            let l = GroupLayout::new_with_parity(n, m, 2 * (n - m));
            for s in 0..n {
                let pos: Vec<usize> = l
                    .contributors(s)
                    .map(|r| l.codeword_pos(r, s).unwrap())
                    .collect();
                assert_eq!(pos, (0..n - m).collect::<Vec<_>>(), "slot {s}");
                for r in 0..n {
                    if !l.contributes(r, s) {
                        assert_eq!(l.codeword_pos(r, s), None);
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least m + 1")]
    fn group_smaller_than_codeword_rejected() {
        let _ = GroupLayout::new_with_parity(2, 2, 8);
    }
}
