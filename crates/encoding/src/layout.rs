//! Stripe/slot geometry of the group encoding (paper Figure 1).
//!
//! A group has `N` ranks and `N` *slots*. Rank `r`'s local data is split
//! into `N-1` stripes, assigned to the slots `{0..N} \ {r}`; slot `r` is
//! where the *parity* guarded by rank `r` lives. The parity of slot `s`
//! is the codec-combination of stripe-at-slot-`s` from every rank except
//! `s` — exactly the rotating-parity placement of RAID-5, which spreads
//! encoding traffic over all ranks instead of one root.

use std::ops::Range;

/// Geometry for one group member's data.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GroupLayout {
    n: usize,
    data_len: usize,
    stripe_len: usize,
}

impl GroupLayout {
    /// Layout for a group of `n >= 2` ranks each holding `data_len`
    /// elements. Data is padded (conceptually with zeros) to a multiple
    /// of `n - 1`.
    #[must_use]
    pub fn new(n: usize, data_len: usize) -> Self {
        assert!(n >= 2, "group must have at least 2 ranks");
        let stripe_len = data_len.div_ceil(n - 1);
        GroupLayout {
            n,
            data_len,
            stripe_len,
        }
    }

    /// Group size `N`.
    #[must_use]
    pub fn group_size(&self) -> usize {
        self.n
    }

    /// Unpadded per-rank data length.
    #[must_use]
    pub fn data_len(&self) -> usize {
        self.data_len
    }

    /// Stripe length (= checksum length): `ceil(data_len / (N-1))`.
    #[must_use]
    pub fn stripe_len(&self) -> usize {
        self.stripe_len
    }

    /// Padded data length every rank must allocate: `stripe_len * (N-1)`.
    #[must_use]
    pub fn padded_len(&self) -> usize {
        self.stripe_len * (self.n - 1)
    }

    /// Number of data stripes per rank.
    #[must_use]
    pub fn stripes_per_rank(&self) -> usize {
        self.n - 1
    }

    /// Slot that rank `r`'s data stripe `k` (`k < N-1`) occupies.
    #[must_use]
    pub fn slot_of_stripe(&self, r: usize, k: usize) -> usize {
        assert!(r < self.n && k < self.n - 1);
        if k < r {
            k
        } else {
            k + 1
        }
    }

    /// Data stripe of rank `r` living in slot `s`, or `None` when `s == r`
    /// (that slot holds rank `r`'s parity, not data).
    #[must_use]
    pub fn stripe_of_slot(&self, r: usize, s: usize) -> Option<usize> {
        assert!(r < self.n && s < self.n);
        if s == r {
            None
        } else if s < r {
            Some(s)
        } else {
            Some(s - 1)
        }
    }

    /// Element range of stripe `k` within the padded data buffer.
    #[must_use]
    pub fn stripe_range(&self, k: usize) -> Range<usize> {
        assert!(k < self.n - 1);
        k * self.stripe_len..(k + 1) * self.stripe_len
    }

    /// Borrow stripe `k` from a padded data buffer.
    pub fn stripe<'a>(&self, data: &'a [f64], k: usize) -> &'a [f64] {
        assert_eq!(data.len(), self.padded_len(), "data must be padded");
        &data[self.stripe_range(k)]
    }

    /// The ranks contributing data to slot `s` (everyone but the slot
    /// owner).
    pub fn contributors(&self, s: usize) -> impl Iterator<Item = usize> + '_ {
        assert!(s < self.n);
        (0..self.n).filter(move |&r| r != s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stripe_len_is_ceil() {
        let l = GroupLayout::new(4, 10);
        assert_eq!(l.stripe_len(), 4); // ceil(10/3)
        assert_eq!(l.padded_len(), 12);
        let exact = GroupLayout::new(4, 9);
        assert_eq!(exact.stripe_len(), 3);
        assert_eq!(exact.padded_len(), 9);
    }

    #[test]
    fn checksum_is_fraction_of_data() {
        // A checksum is 1/(N-1) of the (padded) data — the memory claim
        // behind Table 1.
        let l = GroupLayout::new(16, 15 * 1000);
        assert_eq!(l.stripe_len() * 15, l.padded_len());
        assert_eq!(l.stripe_len(), 1000);
    }

    #[test]
    fn slot_assignment_skips_own_rank() {
        let l = GroupLayout::new(4, 9);
        // rank 1's stripes occupy slots 0, 2, 3
        assert_eq!(l.slot_of_stripe(1, 0), 0);
        assert_eq!(l.slot_of_stripe(1, 1), 2);
        assert_eq!(l.slot_of_stripe(1, 2), 3);
        // inverse
        assert_eq!(l.stripe_of_slot(1, 0), Some(0));
        assert_eq!(l.stripe_of_slot(1, 1), None);
        assert_eq!(l.stripe_of_slot(1, 2), Some(1));
        assert_eq!(l.stripe_of_slot(1, 3), Some(2));
    }

    #[test]
    fn slot_and_stripe_are_inverse_bijections() {
        for n in 2..=8 {
            let l = GroupLayout::new(n, 21);
            for r in 0..n {
                for k in 0..n - 1 {
                    let s = l.slot_of_stripe(r, k);
                    assert_ne!(s, r, "a rank never stores data in its parity slot");
                    assert_eq!(l.stripe_of_slot(r, s), Some(k));
                }
                assert_eq!(l.stripe_of_slot(r, r), None);
            }
        }
    }

    #[test]
    fn every_slot_has_n_minus_1_contributors() {
        let l = GroupLayout::new(5, 8);
        for s in 0..5 {
            let c: Vec<usize> = l.contributors(s).collect();
            assert_eq!(c.len(), 4);
            assert!(!c.contains(&s));
        }
    }

    #[test]
    fn stripe_slices_partition_padded_data() {
        let l = GroupLayout::new(3, 5); // stripe_len 3, padded 6
        let data: Vec<f64> = (0..6).map(|i| i as f64).collect();
        assert_eq!(l.stripe(&data, 0), &[0.0, 1.0, 2.0]);
        assert_eq!(l.stripe(&data, 1), &[3.0, 4.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "padded")]
    fn unpadded_data_rejected() {
        let l = GroupLayout::new(3, 5);
        let data = vec![0.0; 5];
        l.stripe(&data, 0);
    }
}
