//! Dual parity (RAID-6 / Reed-Solomon P+Q) — the "more complex encoding
//! methods … to tolerate more node failures" extension the paper names in
//! §2.1.
//!
//! For stripes `D_0 … D_{k-1}` (byte-wise over GF(2^8)):
//!
//! * `P = D_0 ⊕ D_1 ⊕ … ⊕ D_{k-1}`
//! * `Q = g^0·D_0 ⊕ g^1·D_1 ⊕ … ⊕ g^{k-1}·D_{k-1}`
//!
//! Any two erasures among `{D_i} ∪ {P, Q}` are recoverable. Data here is
//! `f64`, viewed as little-endian bytes — recovery is bit-exact. All hot
//! loops run on the chunked [`crate::kernels`] engine: the plain methods
//! use the process-wide [`KernelConfig`], the `_with` variants take an
//! explicit policy (the benchmarks A/B serial against parallel).

use crate::gf256;
use crate::kernels::{self, KernelConfig};

/// Encoder/decoder for one group of `k` data stripes.
#[derive(Clone, Copy, Debug)]
pub struct DualParity {
    k: usize,
    stripe_len: usize,
}

/// What was lost, for [`DualParity::recover`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Erasure {
    /// Data stripe `i` lost.
    Data(usize),
    /// P parity lost.
    P,
    /// Q parity lost.
    Q,
}

impl DualParity {
    /// Code over `k >= 1` stripes of `stripe_len` f64 elements
    /// (`k <= 255`, the GF(256) limit).
    pub fn new(k: usize, stripe_len: usize) -> Self {
        assert!((1..=255).contains(&k), "k must be in 1..=255");
        DualParity { k, stripe_len }
    }

    /// Number of data stripes.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Compute `(P, Q)` for the stripes under the process-wide
    /// [`KernelConfig`].
    pub fn encode(&self, stripes: &[&[f64]]) -> (Vec<f64>, Vec<f64>) {
        self.encode_with(stripes, KernelConfig::global())
    }

    /// Compute `(P, Q)` under an explicit kernel policy.
    pub fn encode_with(&self, stripes: &[&[f64]], cfg: KernelConfig) -> (Vec<f64>, Vec<f64>) {
        assert_eq!(stripes.len(), self.k, "need exactly k stripes");
        let mut p = vec![0.0f64; self.stripe_len];
        let mut q = vec![0.0f64; self.stripe_len];
        for (i, s) in stripes.iter().enumerate() {
            assert_eq!(s.len(), self.stripe_len, "stripe length mismatch");
            kernels::xor_accumulate(&mut p, s, cfg);
            kernels::gf_mac(&mut q, s, gf256::gpow(i), cfg);
        }
        (p, q)
    }

    /// Recover up to two erasures. `stripes[i]` is `None` when lost;
    /// `p`/`q` are `None` when the corresponding parity is lost. Returns
    /// the fully restored stripe set (parities are not returned — re-run
    /// [`Self::encode`] if needed). Runs under the process-wide
    /// [`KernelConfig`].
    ///
    /// Panics if more than two things are missing (beyond the code's
    /// correction capability) — callers detect that case from group
    /// membership before recovery.
    pub fn recover(
        &self,
        stripes: &[Option<&[f64]>],
        p: Option<&[f64]>,
        q: Option<&[f64]>,
    ) -> Vec<Vec<f64>> {
        self.recover_with(stripes, p, q, KernelConfig::global())
    }

    /// [`Self::recover`] under an explicit kernel policy.
    pub fn recover_with(
        &self,
        stripes: &[Option<&[f64]>],
        p: Option<&[f64]>,
        q: Option<&[f64]>,
        cfg: KernelConfig,
    ) -> Vec<Vec<f64>> {
        assert_eq!(stripes.len(), self.k, "need exactly k stripe slots");
        let missing: Vec<usize> = (0..self.k).filter(|&i| stripes[i].is_none()).collect();
        let lost = missing.len() + usize::from(p.is_none()) + usize::from(q.is_none());
        assert!(
            lost <= 2,
            "dual parity corrects at most two erasures, got {lost}"
        );

        let restored: Vec<(usize, Vec<f64>)> = match (missing.as_slice(), p, q) {
            // Nothing lost among data.
            ([], _, _) => return stripes.iter().map(|s| s.unwrap().to_vec()).collect(),
            // One data stripe lost, P available: XOR reconstruction.
            ([x], Some(p), _) => {
                let mut d = p.to_vec();
                for (i, s) in stripes.iter().enumerate() {
                    if i != *x {
                        kernels::xor_accumulate(&mut d, s.unwrap(), cfg);
                    }
                }
                vec![(*x, d)]
            }
            // One data stripe lost, P lost too: solve with Q.
            ([x], None, Some(q)) => {
                // q_partial = Q ⊕ Σ_{i≠x} g^i D_i ; D_x = q_partial / g^x
                let mut qp = q.to_vec();
                for (i, s) in stripes.iter().enumerate() {
                    if i != *x {
                        kernels::gf_mac(&mut qp, s.unwrap(), gf256::gpow(i), cfg);
                    }
                }
                kernels::gf_scale(&mut qp, gf256::inv(gf256::gpow(*x)), cfg);
                vec![(*x, qp)]
            }
            // Two data stripes lost: solve the 2x2 system with P and Q.
            ([x, y], Some(p), Some(q)) => {
                let (x, y) = (*x, *y);
                let mut pp = p.to_vec();
                let mut qp = q.to_vec();
                for (i, s) in stripes.iter().enumerate() {
                    if i != x && i != y {
                        let s = s.unwrap();
                        kernels::xor_accumulate(&mut pp, s, cfg);
                        kernels::gf_mac(&mut qp, s, gf256::gpow(i), cfg);
                    }
                }
                // pp = Dx ⊕ Dy ; qp = g^x Dx ⊕ g^y Dy
                // => Dy = (qp ⊕ g^x·pp) / (g^x ⊕ g^y); Dx = pp ⊕ Dy
                let gx = gf256::gpow(x);
                let gy = gf256::gpow(y);
                let mut dy = qp;
                kernels::gf_mac(&mut dy, &pp, gx, cfg);
                kernels::gf_scale(&mut dy, gf256::inv(gx ^ gy), cfg);
                let mut dx = pp;
                kernels::xor_accumulate(&mut dx, &dy, cfg);
                vec![(x, dx), (y, dy)]
            }
            _ => panic!("unrecoverable erasure pattern"),
        };
        let mut out: Vec<Option<Vec<f64>>> =
            stripes.iter().map(|s| s.map(<[f64]>::to_vec)).collect();
        for (i, d) in restored {
            out[i] = Some(d);
        }
        out.into_iter()
            .map(|s| s.expect("all stripes placed"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(k: usize, len: usize) -> Vec<Vec<f64>> {
        (0..k)
            .map(|i| {
                (0..len)
                    .map(|j| ((i * 31 + j * 7) as f64).sin() * 1e3)
                    .collect()
            })
            .collect()
    }

    fn refs(v: &[Vec<f64>]) -> Vec<&[f64]> {
        v.iter().map(|s| s.as_slice()).collect()
    }

    #[test]
    fn recovers_single_data_loss_via_p() {
        let data = sample(5, 16);
        let dp = DualParity::new(5, 16);
        let (p, q) = dp.encode(&refs(&data));
        for lost in 0..5 {
            let stripes: Vec<Option<&[f64]>> = data
                .iter()
                .enumerate()
                .map(|(i, s)| if i == lost { None } else { Some(s.as_slice()) })
                .collect();
            let rec = dp.recover(&stripes, Some(&p), Some(&q));
            assert_eq!(rec[lost], data[lost], "stripe {lost}");
        }
    }

    #[test]
    fn recovers_data_plus_p_loss_via_q() {
        let data = sample(4, 8);
        let dp = DualParity::new(4, 8);
        let (_p, q) = dp.encode(&refs(&data));
        for lost in 0..4 {
            let stripes: Vec<Option<&[f64]>> = data
                .iter()
                .enumerate()
                .map(|(i, s)| if i == lost { None } else { Some(s.as_slice()) })
                .collect();
            let rec = dp.recover(&stripes, None, Some(&q));
            for (a, b) in rec[lost].iter().zip(&data[lost]) {
                assert_eq!(a.to_bits(), b.to_bits(), "bit-exact recovery");
            }
        }
    }

    #[test]
    fn recovers_two_data_losses() {
        let data = sample(6, 12);
        let dp = DualParity::new(6, 12);
        let (p, q) = dp.encode(&refs(&data));
        for x in 0..6 {
            for y in x + 1..6 {
                let stripes: Vec<Option<&[f64]>> = data
                    .iter()
                    .enumerate()
                    .map(|(i, s)| {
                        if i == x || i == y {
                            None
                        } else {
                            Some(s.as_slice())
                        }
                    })
                    .collect();
                let rec = dp.recover(&stripes, Some(&p), Some(&q));
                assert_eq!(rec[x], data[x], "({x},{y})");
                assert_eq!(rec[y], data[y], "({x},{y})");
            }
        }
    }

    #[test]
    fn parity_only_loss_is_trivial() {
        let data = sample(3, 4);
        let dp = DualParity::new(3, 4);
        let stripes: Vec<Option<&[f64]>> = data.iter().map(|s| Some(s.as_slice())).collect();
        let rec = dp.recover(&stripes, None, None);
        assert_eq!(rec, data);
    }

    #[test]
    #[should_panic(expected = "at most two")]
    fn three_erasures_rejected() {
        let data = sample(4, 4);
        let dp = DualParity::new(4, 4);
        let (p, _q) = dp.encode(&refs(&data));
        let stripes: Vec<Option<&[f64]>> = data
            .iter()
            .enumerate()
            .map(|(i, s)| if i < 2 { None } else { Some(s.as_slice()) })
            .collect();
        dp.recover(&stripes, Some(&p), None);
    }

    #[test]
    fn special_float_values_round_trip() {
        let data = vec![
            vec![f64::INFINITY, f64::NEG_INFINITY, 0.0],
            vec![f64::NAN, -0.0, f64::MIN_POSITIVE],
        ];
        let dp = DualParity::new(2, 3);
        let (p, q) = dp.encode(&refs(&data));
        let stripes: Vec<Option<&[f64]>> = vec![None, Some(data[1].as_slice())];
        let rec = dp.recover(&stripes, Some(&p), Some(&q));
        for (a, b) in rec[0].iter().zip(&data[0]) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn kernel_policies_agree_bit_exactly() {
        // Parallel chunking must not change a single bit of P, Q, or any
        // recovered stripe.
        let data = sample(7, 1031);
        let dp = DualParity::new(7, 1031);
        let serial = KernelConfig::serial();
        let par = KernelConfig::new(4, 128);
        let (p0, q0) = dp.encode_with(&refs(&data), serial);
        let (p1, q1) = dp.encode_with(&refs(&data), par);
        assert!(p0.iter().zip(&p1).all(|(a, b)| a.to_bits() == b.to_bits()));
        assert!(q0.iter().zip(&q1).all(|(a, b)| a.to_bits() == b.to_bits()));
        let stripes: Vec<Option<&[f64]>> = data
            .iter()
            .enumerate()
            .map(|(i, s)| if i < 2 { None } else { Some(s.as_slice()) })
            .collect();
        let r0 = dp.recover_with(&stripes, Some(&p0), Some(&q0), serial);
        let r1 = dp.recover_with(&stripes, Some(&p0), Some(&q0), par);
        for (a, b) in r0.iter().zip(&r1) {
            assert!(a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits()));
        }
        assert_eq!(r0[0], data[0]);
        assert_eq!(r0[1], data[1]);
    }
}
