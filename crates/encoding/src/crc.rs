//! CRC32C (Castagnoli) checksums for checkpoint integrity.
//!
//! In-memory checkpoints trust DRAM for the whole job lifetime, which is
//! exactly where silent corruption is most damaging: a flipped bit in a
//! checkpoint copy or a parity stripe is restored *bit-exactly* into the
//! application unless something checks. This module provides the
//! detection layer: CRC32C over `f64` buffers, walked in
//! [`KernelConfig::chunk_len`] blocks like every other kernel so large
//! buffers fan out to scoped threads — the per-span CRCs are stitched
//! together with the exact GF(2) combine, so the parallel result is
//! bit-identical to the serial walk for every policy.
//!
//! The Castagnoli polynomial (`0x1EDC6F41`, reflected `0x82F63B78`) is
//! the iSCSI / SCTP / SSE4.2 `crc32` polynomial — the conventional choice
//! for storage integrity because of its better Hamming distance at these
//! block sizes than CRC-32/ISO. The byte walk itself dispatches through
//! [`crate::simd::CrcBackend`] (table / slice-by-8 / hardware `crc32`),
//! every variant of which computes the identical function.

use crate::kernels::KernelConfig;
use crate::simd::{self, CrcBackend};

/// Reflected CRC32C (Castagnoli) polynomial.
pub(crate) const POLY: u32 = 0x82F6_3B78;

/// CRC32C of a byte slice (standard init `!0`, final xor `!0`), on the
/// backend the process-wide [`KernelConfig::global`] policy selects.
#[must_use]
pub fn crc32c(bytes: &[u8]) -> u32 {
    let backend = CrcBackend::select(KernelConfig::global().simd);
    !simd::crc32c_update(!0, bytes, backend)
}

fn gf2_matrix_times(mat: &[u32; 32], mut vec: u32) -> u32 {
    let mut sum = 0;
    let mut i = 0;
    while vec != 0 {
        if vec & 1 != 0 {
            sum ^= mat[i];
        }
        vec >>= 1;
        i += 1;
    }
    sum
}

fn gf2_matrix_square(square: &mut [u32; 32], mat: &[u32; 32]) {
    for (sq, &m) in square.iter_mut().zip(mat.iter()) {
        *sq = gf2_matrix_times(mat, m);
    }
}

/// Combine two CRC32C values: for buffers `A` and `B`,
/// `crc32c(A ‖ B) == crc32c_combine(crc32c(A), crc32c(B), B.len())`.
///
/// This is the zlib `crc32_combine` construction — advance `crc_a`
/// through `len_b` zero bytes by repeated squaring of the shift
/// operator's GF(2) matrix, then xor in `crc_b`. It is exact, so chunked
/// parallel CRCs reassemble to the serial answer bit-for-bit.
#[must_use]
pub fn crc32c_combine(mut crc_a: u32, crc_b: u32, mut len_b: u64) -> u32 {
    if len_b == 0 {
        return crc_a;
    }
    let mut even = [0u32; 32]; // operator for 2 zero bytes
    let mut odd = [0u32; 32]; // operator for 1 zero byte
    odd[0] = POLY;
    let mut row = 1u32;
    for cell in odd.iter_mut().skip(1) {
        *cell = row;
        row <<= 1;
    }
    gf2_matrix_square(&mut even, &odd);
    gf2_matrix_square(&mut odd, &even);
    loop {
        gf2_matrix_square(&mut even, &odd);
        if len_b & 1 != 0 {
            crc_a = gf2_matrix_times(&even, crc_a);
        }
        len_b >>= 1;
        if len_b == 0 {
            break;
        }
        gf2_matrix_square(&mut odd, &even);
        if len_b & 1 != 0 {
            crc_a = gf2_matrix_times(&odd, crc_a);
        }
        len_b >>= 1;
        if len_b == 0 {
            break;
        }
    }
    crc_a ^ crc_b
}

/// Serial CRC32C over the little-endian bytes of an `f64` span,
/// continuing from an in-flight (pre-inverted) state. On little-endian
/// targets the span is walked as one contiguous byte view (so the
/// slice-by-8 / hardware backends see long runs); elsewhere each element
/// is serialized to little-endian explicitly.
fn update_f64(mut crc: u32, span: &[f64], backend: CrcBackend) -> u32 {
    if cfg!(target_endian = "little") {
        return simd::crc32c_update(crc, simd::f64_bytes(span), backend);
    }
    for v in span {
        crc = simd::crc32c_update(crc, &v.to_bits().to_le_bytes(), backend);
    }
    crc
}

/// CRC32C over the little-endian byte image of an `f64` buffer, walked
/// in `cfg.chunk_len`-element blocks. When the policy allows, contiguous
/// block spans are CRC'd by scoped threads and stitched with
/// [`crc32c_combine`]; the result equals the serial walk bit-for-bit.
#[must_use]
pub fn crc32c_f64(data: &[f64], cfg: KernelConfig) -> u32 {
    let backend = CrcBackend::select(cfg.simd);
    if !cfg.is_parallel_for(data.len()) {
        return !update_f64(!0, data, backend);
    }
    let sub = KernelConfig::serial().with_simd(cfg.simd);
    let n_chunks = data.len().div_ceil(cfg.chunk_len);
    let workers = cfg.threads.min(n_chunks);
    let span = n_chunks.div_ceil(workers) * cfg.chunk_len;
    let parts: Vec<(u32, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = data
            .chunks(span)
            .map(|s| scope.spawn(move || (crc32c_f64(s, sub), s.len() as u64 * 8)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("crc worker panicked"))
            .collect()
    });
    let mut iter = parts.into_iter();
    let (mut crc, _) = iter.next().expect("at least one span");
    for (c, len) in iter {
        crc = crc32c_combine(crc, c, len);
    }
    crc
}

/// Per-stripe CRC32Cs of a buffer carved into `stripe_len`-element
/// stripes (the group layout's stripe geometry; a short tail stripe gets
/// its own CRC). This is the unit of corruption *localization*: a
/// mismatching entry names the stripe, and the repair path downgrades
/// its owner to an erasure for the group parity to rebuild.
#[must_use]
pub fn stripe_crcs(data: &[f64], stripe_len: usize, cfg: KernelConfig) -> Vec<u32> {
    assert!(stripe_len > 0, "stripe_len must be positive");
    data.chunks(stripe_len)
        .map(|s| crc32c_f64(s, cfg))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard CRC-32/ISCSI check values.
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(b""), 0);
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
    }

    #[test]
    fn combine_matches_concatenation() {
        let a = b"the quick brown fox ";
        let b = b"jumps over the lazy dog";
        let whole: Vec<u8> = a.iter().chain(b.iter()).copied().collect();
        assert_eq!(
            crc32c_combine(crc32c(a), crc32c(b), b.len() as u64),
            crc32c(&whole)
        );
        assert_eq!(crc32c_combine(crc32c(a), crc32c(b""), 0), crc32c(a));
    }

    fn data(len: usize, salt: u64) -> Vec<f64> {
        (0..len)
            .map(|i| {
                let x = (i as u64)
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(salt);
                f64::from_bits(x >> 2)
            })
            .collect()
    }

    #[test]
    fn f64_crc_equals_byte_crc() {
        let d = data(257, 1);
        let bytes: Vec<u8> = d.iter().flat_map(|v| v.to_bits().to_le_bytes()).collect();
        assert_eq!(crc32c_f64(&d, KernelConfig::serial()), crc32c(&bytes));
    }

    #[test]
    fn parallel_crc_is_bit_identical_to_serial() {
        for len in [0usize, 1, 7, 100, 1023, 4096, 10_000] {
            let d = data(len, 2);
            let reference = crc32c_f64(&d, KernelConfig::serial());
            for cfg in [
                KernelConfig::new(1, 7),
                KernelConfig::new(2, 13),
                KernelConfig::new(4, 64),
                KernelConfig::new(8, 1),
                KernelConfig::new(3, 1 << 20),
            ] {
                assert_eq!(crc32c_f64(&d, cfg), reference, "len {len} cfg {cfg:?}");
            }
        }
    }

    #[test]
    fn forced_kernel_paths_agree() {
        use crate::simd::SimdMode;
        for len in [0usize, 1, 7, 100, 1023, 4096] {
            let d = data(len, 6);
            let reference = crc32c_f64(&d, KernelConfig::serial().with_simd(SimdMode::ForceScalar));
            for mode in [SimdMode::Auto, SimdMode::ForceSimd] {
                let cfg = KernelConfig::new(2, 64).with_simd(mode);
                assert_eq!(crc32c_f64(&d, cfg), reference, "len {len} mode {mode:?}");
            }
        }
    }

    #[test]
    fn single_bit_flip_always_detected() {
        let mut d = data(64, 3);
        let clean = crc32c_f64(&d, KernelConfig::serial());
        for (i, bit) in [(0usize, 0u32), (13, 17), (63, 63)] {
            let orig = d[i];
            d[i] = f64::from_bits(orig.to_bits() ^ (1u64 << bit));
            assert_ne!(
                crc32c_f64(&d, KernelConfig::serial()),
                clean,
                "flip at elem {i} bit {bit} must change the CRC"
            );
            d[i] = orig;
        }
        assert_eq!(crc32c_f64(&d, KernelConfig::serial()), clean);
    }

    #[test]
    fn stripe_crcs_localize_the_flip() {
        let mut d = data(12, 4);
        let clean = stripe_crcs(&d, 4, KernelConfig::serial());
        assert_eq!(clean.len(), 3);
        d[5] = f64::from_bits(d[5].to_bits() ^ 1);
        let dirty = stripe_crcs(&d, 4, KernelConfig::serial());
        assert_ne!(clean[1], dirty[1], "stripe 1 holds element 5");
        assert_eq!(clean[0], dirty[0]);
        assert_eq!(clean[2], dirty[2]);
    }

    #[test]
    fn short_tail_stripe_gets_own_crc() {
        let d = data(10, 5);
        let crcs = stripe_crcs(&d, 4, KernelConfig::serial());
        assert_eq!(crcs.len(), 3, "4 + 4 + 2");
        assert_eq!(crcs[2], crc32c_f64(&d[8..], KernelConfig::serial()));
    }
}
