//! GF(2^8) arithmetic for the dual-parity (RAID-6-style) extension.
//!
//! Field: polynomials over GF(2) modulo `x^8 + x^4 + x^3 + x^2 + 1`
//! (0x11D), the conventional RAID-6 field; `g = 2` generates the
//! multiplicative group.

use std::sync::OnceLock;

const POLY: u16 = 0x11D;

/// The generator element used for the Q parity coefficients.
pub const GENERATOR: u8 = 2;

struct Tables {
    exp: [u8; 512], // doubled so exp[(a+b) mod 255] reads need no modulo
    log: [u8; 256],
}

fn tables() -> &'static Tables {
    static T: OnceLock<Tables> = OnceLock::new();
    T.get_or_init(|| {
        let mut exp = [0u8; 512];
        let mut log = [0u8; 256];
        let mut x: u16 = 1;
        for i in 0..255 {
            exp[i] = x as u8;
            log[x as usize] = i as u8;
            x <<= 1;
            if x & 0x100 != 0 {
                x ^= POLY;
            }
        }
        for i in 255..512 {
            exp[i] = exp[i - 255];
        }
        Tables { exp, log }
    })
}

/// Field addition (= subtraction): XOR.
#[inline]
pub fn add(a: u8, b: u8) -> u8 {
    a ^ b
}

/// Field multiplication via log/exp tables.
#[inline]
pub fn mul(a: u8, b: u8) -> u8 {
    if a == 0 || b == 0 {
        return 0;
    }
    let t = tables();
    t.exp[t.log[a as usize] as usize + t.log[b as usize] as usize]
}

/// Multiplicative inverse; panics on zero.
#[inline]
pub fn inv(a: u8) -> u8 {
    assert!(a != 0, "gf256: zero has no inverse");
    let t = tables();
    t.exp[255 - t.log[a as usize] as usize]
}

/// Field division `a / b`; panics when `b == 0`.
#[inline]
pub fn div(a: u8, b: u8) -> u8 {
    mul(a, inv(b))
}

/// `g^i` for the Q-parity coefficient of stripe `i`.
#[inline]
pub fn gpow(i: usize) -> u8 {
    tables().exp[i % 255]
}

/// The full multiplication row of `c`: `table[b] = mul(c, b)` for every
/// byte `b`. Hot loops that scale whole buffers by one scalar (the Q
/// parity of the dual code) build this once and then index it, which
/// beats a log/exp lookup pair per byte.
#[must_use]
pub fn mul_table(c: u8) -> [u8; 256] {
    let mut row = [0u8; 256];
    if c == 0 {
        return row;
    }
    let t = tables();
    let lc = t.log[c as usize] as usize;
    for b in 1..=255usize {
        row[b] = t.exp[t.log[b] as usize + lc];
    }
    row
}

/// Multiply every byte of `data` by the scalar `c`, in place.
pub fn scale_slice(data: &mut [u8], c: u8) {
    if c == 1 {
        return;
    }
    if c == 0 {
        data.fill(0);
        return;
    }
    let t = tables();
    let lc = t.log[c as usize] as usize;
    for b in data.iter_mut() {
        *b = if *b == 0 {
            0
        } else {
            t.exp[t.log[*b as usize] as usize + lc]
        };
    }
}

/// Invert a square matrix over GF(2^8) by Gauss–Jordan elimination with
/// partial pivoting (any nonzero pivot works — the field is exact).
/// Returns `None` for a singular matrix. Used by the generalized RS
/// codec to solve for erased codeword positions; the matrices there are
/// Cauchy submatrices, which are provably nonsingular, so `None` would
/// indicate a construction bug.
#[must_use]
pub fn invert_matrix(mat: &[Vec<u8>]) -> Option<Vec<Vec<u8>>> {
    let n = mat.len();
    // Augmented [A | I] rows, eliminated in place.
    let mut a: Vec<Vec<u8>> = mat
        .iter()
        .enumerate()
        .map(|(i, row)| {
            assert_eq!(row.len(), n, "invert_matrix: matrix must be square");
            let mut r = row.clone();
            r.resize(2 * n, 0);
            r[n + i] = 1;
            r
        })
        .collect();
    for col in 0..n {
        let pivot = (col..n).find(|&r| a[r][col] != 0)?;
        a.swap(col, pivot);
        let p_inv = inv(a[col][col]);
        for v in a[col].iter_mut() {
            *v = mul(*v, p_inv);
        }
        for row in 0..n {
            if row == col || a[row][col] == 0 {
                continue;
            }
            let factor = a[row][col];
            let (src, dst) = if row < col {
                let (lo, hi) = a.split_at_mut(col);
                (&hi[0], &mut lo[row])
            } else {
                let (lo, hi) = a.split_at_mut(row);
                (&lo[col], &mut hi[0])
            };
            for (d, s) in dst.iter_mut().zip(src.iter()) {
                *d ^= mul(factor, *s);
            }
        }
    }
    Some(a.into_iter().map(|row| row[n..].to_vec()).collect())
}

/// `acc[i] ^= mul(c, x[i])` — the fused multiply-accumulate of RS coding.
pub fn mac_slice(acc: &mut [u8], x: &[u8], c: u8) {
    assert_eq!(acc.len(), x.len(), "mac_slice: length mismatch");
    if c == 0 {
        return;
    }
    let t = tables();
    let lc = t.log[c as usize] as usize;
    for (a, b) in acc.iter_mut().zip(x) {
        if *b != 0 {
            *a ^= t.exp[t.log[*b as usize] as usize + lc];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mul_is_commutative_and_distributes() {
        for a in [0u8, 1, 2, 7, 123, 255] {
            for b in [0u8, 1, 3, 99, 200, 255] {
                assert_eq!(mul(a, b), mul(b, a));
                for c in [5u8, 17] {
                    assert_eq!(mul(a, add(b, c)), add(mul(a, b), mul(a, c)));
                }
            }
        }
    }

    #[test]
    fn inverse_round_trips() {
        for a in 1..=255u8 {
            assert_eq!(mul(a, inv(a)), 1, "a = {a}");
            assert_eq!(div(mul(a, 77), 77), a);
        }
    }

    #[test]
    fn generator_has_full_order() {
        let mut seen = [false; 256];
        for i in 0..255 {
            let v = gpow(i);
            assert!(!seen[v as usize], "g^{i} repeats");
            seen[v as usize] = true;
        }
        assert!(!seen[0], "powers of g are never zero");
        assert_eq!(gpow(0), 1);
        assert_eq!(gpow(1), GENERATOR);
        assert_eq!(gpow(255), 1);
    }

    #[test]
    fn scale_and_mac_match_scalar_ops() {
        let x: Vec<u8> = (0..=255).collect();
        let mut scaled = x.clone();
        scale_slice(&mut scaled, 29);
        for (i, v) in scaled.iter().enumerate() {
            assert_eq!(*v, mul(x[i], 29));
        }
        let mut acc = vec![0xAB; 256];
        mac_slice(&mut acc, &x, 29);
        for (i, v) in acc.iter().enumerate() {
            assert_eq!(*v, 0xAB ^ mul(x[i], 29));
        }
    }

    #[test]
    fn scale_by_zero_and_one() {
        let mut a = vec![1, 2, 3];
        scale_slice(&mut a, 1);
        assert_eq!(a, vec![1, 2, 3]);
        scale_slice(&mut a, 0);
        assert_eq!(a, vec![0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "no inverse")]
    fn zero_inverse_panics() {
        inv(0);
    }

    #[test]
    fn invert_matrix_round_trips_and_detects_singularity() {
        // A known-invertible Cauchy matrix: a[i][j] = 1/(x_i ^ y_j).
        let n = 4;
        let m: Vec<Vec<u8>> = (0..n)
            .map(|i| {
                (0..n)
                    .map(|j| inv((i as u8) ^ (n as u8 + j as u8)))
                    .collect()
            })
            .collect();
        let mi = invert_matrix(&m).expect("Cauchy matrices are invertible");
        for i in 0..n {
            for j in 0..n {
                let mut cell = 0u8;
                for (k, mik) in m[i].iter().enumerate() {
                    cell ^= mul(*mik, mi[k][j]);
                }
                assert_eq!(cell, u8::from(i == j), "identity cell ({i},{j})");
            }
        }
        // Duplicate rows are singular.
        let sing = vec![vec![1u8, 2], vec![1u8, 2]];
        assert!(invert_matrix(&sing).is_none());
        // Empty matrix inverts to the empty matrix.
        assert_eq!(invert_matrix(&[]), Some(vec![]));
    }

    #[test]
    fn mul_table_matches_mul_for_every_pair() {
        for c in [0u8, 1, 2, 29, 143, 255] {
            let row = mul_table(c);
            for b in 0..=255u8 {
                assert_eq!(row[b as usize], mul(c, b), "c={c} b={b}");
            }
        }
    }

    // Exhaustive field-axiom checks are infeasible over all 2^24 triples
    // per axiom; proptest samples the triple space densely instead.
    mod axioms {
        use super::super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn addition_forms_an_abelian_group(a in any::<u8>(), b in any::<u8>(), c in any::<u8>()) {
                prop_assert_eq!(add(a, b), add(b, a));
                prop_assert_eq!(add(add(a, b), c), add(a, add(b, c)));
                prop_assert_eq!(add(a, 0), a);
                // characteristic 2: every element is its own additive inverse
                prop_assert_eq!(add(a, a), 0);
            }

            #[test]
            fn multiplication_is_associative_and_commutative(a in any::<u8>(), b in any::<u8>(), c in any::<u8>()) {
                prop_assert_eq!(mul(a, b), mul(b, a));
                prop_assert_eq!(mul(mul(a, b), c), mul(a, mul(b, c)));
                prop_assert_eq!(mul(a, 1), a);
                prop_assert_eq!(mul(a, 0), 0);
            }

            #[test]
            fn multiplication_distributes_over_addition(a in any::<u8>(), b in any::<u8>(), c in any::<u8>()) {
                prop_assert_eq!(mul(a, add(b, c)), add(mul(a, b), mul(a, c)));
                prop_assert_eq!(mul(add(a, b), c), add(mul(a, c), mul(b, c)));
            }

            #[test]
            fn every_nonzero_element_has_an_inverse(a in 0u8..255) {
                let a = a + 1; // 1..=255: zero has no inverse
                let ai = inv(a);
                prop_assert_eq!(mul(a, ai), 1);
                prop_assert_eq!(mul(ai, a), 1);
                prop_assert_eq!(div(a, a), 1);
            }

            #[test]
            fn no_zero_divisors(a in 0u8..255, b in 0u8..255) {
                prop_assert_ne!(mul(a + 1, b + 1), 0);
            }
        }
    }
}
