#![warn(unused)]
#![allow(clippy::needless_range_loop)] // index loops over coupled arrays are the clearest form for BLAS-style kernels
//! # skt-encoding
//!
//! Stripe-based group parity encoding — the error-correcting layer of the
//! self-checkpoint method (paper §2.1).
//!
//! Processes are partitioned into groups of `N`. Each process splits its
//! local data into `N-1` equal stripes; the group computes one parity
//! stripe per *slot* and stores it on the slot's owner, RAID-5 style, so
//! no single node becomes an encoding hot spot. A checksum is therefore
//! only `1/(N-1)` of the data size — the observation the self-checkpoint
//! protocol exploits to replace a second full checkpoint copy with a
//! second checksum.
//!
//! * [`layout`] — the stripe/slot geometry (who stores which parity,
//!   which stripe of which rank belongs to which slot).
//! * [`code`] — the two single-failure codecs the paper supports through
//!   `MPI_Reduce`: bitwise XOR on `f64` bit patterns (`MPI_BXOR`, exact)
//!   and numeric SUM (`MPI_SUM`, subject to rounding).
//! * [`gf256`] + [`dualparity`] — a RAID-6-style P+Q code over GF(2^8)
//!   tolerating **two** failures per group; the paper names RAID-6 /
//!   Reed-Solomon as the extension path (§2.1), implemented here.
//! * [`rs`] — the generalized Reed–Solomon codec (Cauchy construction)
//!   with `m` parity roles per slot for arbitrary `m ≥ 1`, decoding by
//!   Gauss–Jordan elimination over GF(2^8).
//! * [`codec`] — the pluggable [`ErasureCodec`] abstraction the protocol
//!   stack programs against, with the single-parity codes (`m = 1`),
//!   dual parity (`m = 2`) and the RS family (`Rs { m }`) behind one
//!   [`CodecSpec`] selector.
//! * [`kernels`] — the cache-blocked, multi-threaded accumulate / copy
//!   engine under the codecs, the reduce operators, and the protocol's
//!   flush copies, selected through [`kernels::KernelConfig`].
//! * [`simd`] — the runtime-dispatched byte-level backends under the
//!   GF(2^8)/CRC hot loops: portable split-table kernels plus
//!   SSSE3/AVX2 `pshufb` and slice-by-8 / hardware CRC-32C variants,
//!   forceable via [`simd::SimdMode`] / `SKT_KERNEL_SIMD` and
//!   bit-for-bit equivalent to the scalar reference.
//! * [`crc`] — CRC32C integrity checksums over checkpoint regions,
//!   chunk-walked through the same kernel policy and reassembled with an
//!   exact GF(2) combine, so detection of silent in-memory corruption is
//!   parallel and bit-reproducible.

pub mod code;
pub mod codec;
pub mod crc;
pub mod dualparity;
pub mod gf256;
pub mod kernels;
pub mod layout;
pub mod rs;
pub mod simd;

pub use code::Code;
pub use codec::{CodecSpec, ErasureCodec, Wire};
pub use crc::{crc32c, crc32c_combine, crc32c_f64, stripe_crcs};
pub use dualparity::DualParity;
pub use kernels::KernelConfig;
pub use layout::GroupLayout;
pub use rs::RsCodec;
pub use simd::{CrcBackend, GfBackend, SimdMode};
