//! The pluggable erasure-codec layer: one trait the whole checkpoint
//! stack programs against, with the paper's single-parity codes
//! ([`Code::Xor`] / [`Code::Sum`], `m = 1`) and the RAID-6-style
//! [`DualParity`](crate::dualparity::DualParity) P+Q code (`m = 2`) as
//! implementations.
//!
//! The protocol's encoding stays *distributed*: parities are built by
//! reduce collectives, one per parity role per slot. A codec therefore
//! only supplies local math —
//!
//! * [`ErasureCodec::contrib`]: what a rank feeds into the reduce for
//!   one parity role (for the Q role of the dual code, the data stripe
//!   pre-scaled by `g^pos` in GF(2^8), so the reduce itself stays a
//!   plain bitwise XOR);
//! * [`ErasureCodec::cancel_contrib`]: the contribution that *removes*
//!   a previously encoded stripe from a parity accumulation — recovery
//!   builds per-role syndromes this way;
//! * [`ErasureCodec::solve`]: the local solve turning surviving-role
//!   syndromes into the erased data stripes.
//!
//! All buffer loops run on the chunked [`crate::kernels`] engine.
//! Configuration enters through [`CodecSpec`], the plain-data selector
//! carried by checkpoint configs.

use crate::code::Code;
use crate::gf256;
use crate::kernels::{self, KernelConfig};

/// How a codec's reduce contributions travel and combine on the wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Wire {
    /// Combine IEEE-754 bit patterns with bitwise XOR (`MPI_BXOR` on
    /// `u64` words). Exact and self-inverse.
    Bits,
    /// Combine numerically (`MPI_SUM` on `f64`). Recovery subtracts, so
    /// rebuilt values can differ by floating-point rounding.
    Floats,
}

/// An erasure code over the group's stripe/slot geometry.
///
/// `m = parity_count()` parity stripes per slot tolerate any `m`
/// erasures among one slot's codeword (its data stripes plus its parity
/// stripes). Implementations are stateless — geometry (the codeword
/// position `pos` and stripe length) comes in per call, which is what
/// lets one `&'static` instance serve every group size.
pub trait ErasureCodec: Sync + Send {
    /// Number of parity stripes per slot — the erasures per group this
    /// codec can repair.
    fn parity_count(&self) -> usize;

    /// Short human name (shows up in stats and bench labels).
    fn name(&self) -> &'static str;

    /// Wire representation of the reduce contributions.
    fn wire(&self) -> Wire;

    /// The contribution of the data stripe at codeword position `pos`
    /// to parity role `role` of its slot.
    fn contrib(&self, role: usize, pos: usize, stripe: &[f64], cfg: KernelConfig) -> Vec<f64>;

    /// The contribution that cancels `stripe` back *out* of parity role
    /// `role` (syndrome building during recovery). For [`Wire::Bits`]
    /// codecs XOR is self-inverse, so this equals [`Self::contrib`].
    fn cancel_contrib(
        &self,
        role: usize,
        pos: usize,
        stripe: &[f64],
        cfg: KernelConfig,
    ) -> Vec<f64>;

    /// Solve for the erased codeword positions `erased` (ascending)
    /// given the syndromes of the surviving parity roles. A syndrome is
    /// the role's parity combined with the cancel-contributions of every
    /// *surviving* data stripe, so it equals the combination of the
    /// erased stripes' contributions alone. Returns one rebuilt stripe
    /// per entry of `erased`, in the same order.
    ///
    /// # Panics
    ///
    /// If `erased.len() > parity_count()` or the surviving roles cannot
    /// determine the erased stripes — callers rule that out from group
    /// membership before recovery.
    fn solve(
        &self,
        erased: &[usize],
        syndromes: &[(usize, Vec<f64>)],
        cfg: KernelConfig,
    ) -> Vec<Vec<f64>>;
}

/// Which erasure codec a checkpoint uses — the plain-data selector
/// carried by `CkptConfig` / `SktConfig` and resolved once at init.
#[non_exhaustive]
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[must_use = "a codec spec does nothing until resolved into a codec"]
pub enum CodecSpec {
    /// One parity stripe per slot (`m = 1`): the paper's XOR or SUM
    /// reduce. Tolerates one loss per group.
    Single(Code),
    /// RAID-6-style P+Q over GF(2^8) (`m = 2`). Tolerates any two
    /// losses per group; requires groups of at least 3.
    Dual,
    /// Generalized Reed–Solomon over GF(2^8) with `m` parity roles
    /// (Cauchy construction, see [`crate::rs`]). Tolerates any `m`
    /// losses per group; requires groups of at least `m + 1`.
    Rs {
        /// Parity stripes per slot — the erasures tolerated per group.
        m: usize,
    },
}

impl Default for CodecSpec {
    /// The paper's default: single parity via bitwise XOR.
    fn default() -> Self {
        CodecSpec::Single(Code::Xor)
    }
}

impl CodecSpec {
    /// Single-parity spec over the given reduce code.
    pub fn single(code: Code) -> Self {
        CodecSpec::Single(code)
    }

    /// Dual-parity (P+Q) spec.
    pub fn dual() -> Self {
        CodecSpec::Dual
    }

    /// Generalized Reed–Solomon spec with `m` parity roles.
    pub fn rs(m: usize) -> Self {
        CodecSpec::Rs { m }
    }

    /// Parity stripes per slot, `m`.
    #[must_use]
    pub fn parity_count(self) -> usize {
        self.resolve().parity_count()
    }

    /// The codec instance. Codecs are stateless, so one static each;
    /// the RS family is leak-allocated once per distinct `m` and cached.
    #[must_use]
    pub fn resolve(self) -> &'static dyn ErasureCodec {
        static XOR: SingleCodec = SingleCodec(Code::Xor);
        static SUM: SingleCodec = SingleCodec(Code::Sum);
        static DUAL: DualCodec = DualCodec;
        match self {
            CodecSpec::Single(Code::Xor) => &XOR,
            CodecSpec::Single(Code::Sum) => &SUM,
            CodecSpec::Dual => &DUAL,
            CodecSpec::Rs { m } => resolve_rs(m),
        }
    }

    /// The codec's display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        self.resolve().name()
    }
}

/// One leaked [`RsCodec`](crate::rs::RsCodec) per distinct `m`, cached
/// so repeated resolves hand back the same `&'static` instance (specs
/// are resolved once per checkpoint init, so the lock is cold).
fn resolve_rs(m: usize) -> &'static dyn ErasureCodec {
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};
    static REGISTRY: OnceLock<Mutex<HashMap<usize, &'static crate::rs::RsCodec>>> = OnceLock::new();
    let mut map = REGISTRY
        .get_or_init(|| Mutex::new(HashMap::new()))
        .lock()
        .expect("RS codec registry poisoned");
    let codec: &'static crate::rs::RsCodec = map
        .entry(m)
        .or_insert_with(|| Box::leak(Box::new(crate::rs::RsCodec::new(m))));
    codec
}

/// `m = 1`: the paper's single-parity code over one reduce operator.
struct SingleCodec(Code);

impl ErasureCodec for SingleCodec {
    fn parity_count(&self) -> usize {
        1
    }

    fn name(&self) -> &'static str {
        self.0.name()
    }

    fn wire(&self) -> Wire {
        match self.0 {
            Code::Xor => Wire::Bits,
            Code::Sum => Wire::Floats,
        }
    }

    fn contrib(&self, role: usize, _pos: usize, stripe: &[f64], _cfg: KernelConfig) -> Vec<f64> {
        assert_eq!(role, 0, "single parity has one role");
        stripe.to_vec()
    }

    fn cancel_contrib(
        &self,
        role: usize,
        _pos: usize,
        stripe: &[f64],
        cfg: KernelConfig,
    ) -> Vec<f64> {
        assert_eq!(role, 0, "single parity has one role");
        match self.0 {
            Code::Xor => stripe.to_vec(),
            Code::Sum => kernels::negated(stripe, cfg),
        }
    }

    fn solve(
        &self,
        erased: &[usize],
        syndromes: &[(usize, Vec<f64>)],
        _cfg: KernelConfig,
    ) -> Vec<Vec<f64>> {
        match erased {
            [] => Vec::new(),
            [_] => {
                let (role, s) = syndromes
                    .first()
                    .expect("single parity: the parity role must survive");
                assert_eq!(*role, 0);
                vec![s.clone()]
            }
            _ => panic!("single parity can rebuild only one erasure"),
        }
    }
}

/// `m = 2`: RAID-6-style P+Q over GF(2^8). Contributions for the Q role
/// are pre-scaled locally by `g^pos`, so the distributed reduce is a
/// plain XOR of bit patterns for both roles and the reduce result *is*
/// the parity.
struct DualCodec;

impl ErasureCodec for DualCodec {
    fn parity_count(&self) -> usize {
        2
    }

    fn name(&self) -> &'static str {
        "P+Q"
    }

    fn wire(&self) -> Wire {
        Wire::Bits
    }

    fn contrib(&self, role: usize, pos: usize, stripe: &[f64], cfg: KernelConfig) -> Vec<f64> {
        let mut out = stripe.to_vec();
        match role {
            0 => {}
            1 => kernels::gf_scale(&mut out, gf256::gpow(pos), cfg),
            _ => panic!("dual parity has roles 0 (P) and 1 (Q)"),
        }
        out
    }

    fn cancel_contrib(
        &self,
        role: usize,
        pos: usize,
        stripe: &[f64],
        cfg: KernelConfig,
    ) -> Vec<f64> {
        // XOR wire: cancelling is re-contributing.
        self.contrib(role, pos, stripe, cfg)
    }

    fn solve(
        &self,
        erased: &[usize],
        syndromes: &[(usize, Vec<f64>)],
        cfg: KernelConfig,
    ) -> Vec<Vec<f64>> {
        let s_of = |role: usize| {
            syndromes
                .iter()
                .find(|(r, _)| *r == role)
                .map(|(_, s)| s.as_slice())
        };
        match erased {
            [] => Vec::new(),
            [x] => {
                if let Some(s0) = s_of(0) {
                    // P survives: the syndrome is the stripe.
                    vec![s0.to_vec()]
                } else {
                    // Only Q survives: S1 = g^x · D_x.
                    let s1 = s_of(1).expect("dual parity: no surviving role");
                    let mut d = s1.to_vec();
                    kernels::gf_scale(&mut d, gf256::inv(gf256::gpow(*x)), cfg);
                    vec![d]
                }
            }
            [x, y] => {
                // S0 = Dx ⊕ Dy ; S1 = g^x Dx ⊕ g^y Dy
                // => Dy = (S1 ⊕ g^x·S0) / (g^x ⊕ g^y); Dx = S0 ⊕ Dy
                let s0 = s_of(0).expect("dual parity: P needed for a double erasure");
                let s1 = s_of(1).expect("dual parity: Q needed for a double erasure");
                let gx = gf256::gpow(*x);
                let gy = gf256::gpow(*y);
                let mut dy = s1.to_vec();
                kernels::gf_mac(&mut dy, s0, gx, cfg);
                kernels::gf_scale(&mut dy, gf256::inv(gx ^ gy), cfg);
                let mut dx = s0.to_vec();
                kernels::xor_accumulate(&mut dx, &dy, cfg);
                vec![dx, dy]
            }
            _ => panic!("dual parity corrects at most two erasures"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stripe(pos: usize, len: usize) -> Vec<f64> {
        (0..len)
            .map(|j| ((pos * 37 + j * 11) as f64).cos() * 512.0)
            .collect()
    }

    /// Combine contributions the way the wire does — the local stand-in
    /// for the distributed reduce.
    fn combine(wire: Wire, parts: &[Vec<f64>], len: usize) -> Vec<f64> {
        let mut acc = vec![0.0f64; len];
        for p in parts {
            match wire {
                Wire::Bits => kernels::xor_accumulate(&mut acc, p, KernelConfig::serial()),
                Wire::Floats => kernels::sum_accumulate(&mut acc, p, KernelConfig::serial()),
            }
        }
        acc
    }

    fn encode(codec: &dyn ErasureCodec, data: &[Vec<f64>], len: usize) -> Vec<Vec<f64>> {
        (0..codec.parity_count())
            .map(|role| {
                let parts: Vec<Vec<f64>> = data
                    .iter()
                    .enumerate()
                    .map(|(pos, d)| codec.contrib(role, pos, d, KernelConfig::serial()))
                    .collect();
                combine(codec.wire(), &parts, len)
            })
            .collect()
    }

    /// Erase `erased` data stripes (and no parity), rebuild through the
    /// syndrome path every layer above uses.
    fn rebuild(
        codec: &dyn ErasureCodec,
        data: &[Vec<f64>],
        parity: &[Vec<f64>],
        erased: &[usize],
        len: usize,
    ) -> Vec<Vec<f64>> {
        let cfg = KernelConfig::serial();
        let syndromes: Vec<(usize, Vec<f64>)> = (0..codec.parity_count())
            .map(|role| {
                let mut parts = vec![parity[role].clone()];
                for (pos, d) in data.iter().enumerate() {
                    if !erased.contains(&pos) {
                        parts.push(codec.cancel_contrib(role, pos, d, cfg));
                    }
                }
                (role, combine(codec.wire(), &parts, len))
            })
            .collect();
        codec.solve(erased, &syndromes, cfg)
    }

    #[test]
    fn xor_codec_round_trips_one_erasure() {
        let codec = CodecSpec::default().resolve();
        assert_eq!(codec.parity_count(), 1);
        assert_eq!(codec.wire(), Wire::Bits);
        let data: Vec<Vec<f64>> = (0..4).map(|p| stripe(p, 9)).collect();
        let parity = encode(codec, &data, 9);
        for x in 0..4 {
            let got = rebuild(codec, &data, &parity, &[x], 9);
            assert_eq!(got.len(), 1);
            assert!(got[0]
                .iter()
                .zip(&data[x])
                .all(|(a, b)| a.to_bits() == b.to_bits()));
        }
    }

    #[test]
    fn sum_codec_round_trips_one_erasure() {
        let codec = CodecSpec::single(Code::Sum).resolve();
        assert_eq!(codec.wire(), Wire::Floats);
        let data: Vec<Vec<f64>> = (0..3).map(|p| stripe(p, 6)).collect();
        let parity = encode(codec, &data, 6);
        for x in 0..3 {
            let got = rebuild(codec, &data, &parity, &[x], 6);
            for (a, b) in got[0].iter().zip(&data[x]) {
                assert!((a - b).abs() < 1e-9, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn dual_codec_round_trips_every_pair_of_erasures() {
        let codec = CodecSpec::dual().resolve();
        assert_eq!(codec.parity_count(), 2);
        let k = 5;
        let len = 17;
        let data: Vec<Vec<f64>> = (0..k).map(|p| stripe(p, len)).collect();
        let parity = encode(codec, &data, len);
        for x in 0..k {
            for y in x + 1..k {
                let got = rebuild(codec, &data, &parity, &[x, y], len);
                for (g, want) in got.iter().zip([&data[x], &data[y]]) {
                    assert!(
                        g.iter().zip(want).all(|(a, b)| a.to_bits() == b.to_bits()),
                        "({x},{y})"
                    );
                }
            }
        }
        for x in 0..k {
            let got = rebuild(codec, &data, &parity, &[x], len);
            assert!(got[0]
                .iter()
                .zip(&data[x])
                .all(|(a, b)| a.to_bits() == b.to_bits()));
        }
    }

    #[test]
    fn dual_codec_matches_dualparity_reference() {
        // The distributed contrib/reduce formulation must produce the
        // exact P and Q of the direct DualParity encoder.
        let k = 6;
        let len = 13;
        let data: Vec<Vec<f64>> = (0..k).map(|p| stripe(p, len)).collect();
        let codec = CodecSpec::dual().resolve();
        let parity = encode(codec, &data, len);
        let dp = crate::dualparity::DualParity::new(k, len);
        let refs: Vec<&[f64]> = data.iter().map(|s| s.as_slice()).collect();
        let (p, q) = dp.encode_with(&refs, KernelConfig::serial());
        assert!(parity[0]
            .iter()
            .zip(&p)
            .all(|(a, b)| a.to_bits() == b.to_bits()));
        assert!(parity[1]
            .iter()
            .zip(&q)
            .all(|(a, b)| a.to_bits() == b.to_bits()));
    }

    #[test]
    fn dual_solves_with_only_q_surviving() {
        let codec = CodecSpec::dual().resolve();
        let len = 8;
        let data: Vec<Vec<f64>> = (0..4).map(|p| stripe(p, len)).collect();
        let parity = encode(codec, &data, len);
        let cfg = KernelConfig::serial();
        for x in 0..4 {
            // only role 1 (Q) syndrome available — as when P's owner died
            let mut parts = vec![parity[1].clone()];
            for (pos, d) in data.iter().enumerate() {
                if pos != x {
                    parts.push(codec.cancel_contrib(1, pos, d, cfg));
                }
            }
            let syn = vec![(1usize, combine(Wire::Bits, &parts, len))];
            let got = codec.solve(&[x], &syn, cfg);
            assert!(got[0]
                .iter()
                .zip(&data[x])
                .all(|(a, b)| a.to_bits() == b.to_bits()));
        }
    }

    #[test]
    fn spec_names_and_counts() {
        assert_eq!(CodecSpec::default(), CodecSpec::Single(Code::Xor));
        assert_eq!(CodecSpec::default().name(), "BXOR");
        assert_eq!(CodecSpec::single(Code::Sum).name(), "SUM");
        assert_eq!(CodecSpec::dual().name(), "P+Q");
        assert_eq!(CodecSpec::default().parity_count(), 1);
        assert_eq!(CodecSpec::dual().parity_count(), 2);
    }

    #[test]
    #[should_panic(expected = "only one erasure")]
    fn single_codec_refuses_two_erasures() {
        let codec = CodecSpec::default().resolve();
        codec.solve(&[0, 1], &[(0, vec![0.0])], KernelConfig::serial());
    }
}
