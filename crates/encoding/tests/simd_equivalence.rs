//! SIMD/scalar kernel-equivalence properties: every accelerated backend
//! of the GF(2^8) multiply/axpy and CRC-32C kernels must produce bytes
//! identical to the scalar reference for arbitrary lengths, values and
//! (mis)alignments — including the sub-vector tails the `pshufb` and
//! 8-byte-stride paths hand to their scalar remainders.
//!
//! Buffers are generated from sampled `(len, offset, seed)` primitives
//! (splitmix64 fill), and misalignment is exercised by slicing at a
//! sampled byte offset so the vector loops start off any 16/32-byte
//! boundary. The same properties drive the f64-level kernels through
//! forced [`SimdMode`]s, covering the dispatch plumbing end to end.

use proptest::prelude::*;
use skt_encoding::kernels::{self, KernelConfig};
use skt_encoding::simd::{
    crc32c_update, gf_mac_bytes, gf_scale_bytes, CrcBackend, GfBackend, SimdMode,
};
use skt_encoding::{crc32c_f64, gf256};

fn bytes(len: usize, seed: u64) -> Vec<u8> {
    (0..len)
        .map(|i| {
            let mut z = (i as u64)
                .wrapping_add(seed)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            (z >> 56) as u8
        })
        .collect()
}

fn floats(len: usize, seed: u64) -> Vec<f64> {
    (0..len)
        .map(|i| {
            let z = (i as u64)
                .wrapping_add(seed)
                .wrapping_mul(0xD134_2543_DE82_EF95);
            f64::from_bits(z >> 2) // finite
        })
        .collect()
}

proptest! {
    /// `buf[i] := c·buf[i]`: every available backend equals the scalar
    /// reference at any length, offset and scalar — including c = 0 / 1
    /// (the memset / no-op fast paths) and lengths below one vector.
    #[test]
    fn gf_scale_backends_match_scalar(
        len in 0usize..600,
        offset in 0usize..33,
        c in any::<u8>(),
        seed in any::<u64>(),
    ) {
        let base = bytes(len + offset, seed);
        let mut want = base[offset..].to_vec();
        gf_scale_bytes(&mut want, c, GfBackend::Scalar);
        for backend in GfBackend::available() {
            let mut got = base.clone();
            gf_scale_bytes(&mut got[offset..], c, backend);
            prop_assert_eq!(
                &got[offset..], want.as_slice(),
                "scale: len={} offset={} c={} backend={:?}", len, offset, c, backend
            );
            prop_assert_eq!(&got[..offset], &base[..offset], "prefix untouched");
        }
    }

    /// `acc[i] ^= c·x[i]`: every available backend equals the scalar
    /// reference, with independently mis-aligned accumulator and input.
    #[test]
    fn gf_mac_backends_match_scalar(
        len in 0usize..600,
        a_off in 0usize..33,
        x_off in 0usize..33,
        c in any::<u8>(),
        seed in any::<u64>(),
    ) {
        let acc0 = bytes(len + a_off, seed);
        let x = bytes(len + x_off, seed ^ 0xABCD);
        let mut want = acc0[a_off..].to_vec();
        gf_mac_bytes(&mut want, &x[x_off..], c, GfBackend::Scalar);
        for backend in GfBackend::available() {
            let mut got = acc0.clone();
            gf_mac_bytes(&mut got[a_off..], &x[x_off..], c, backend);
            prop_assert_eq!(
                &got[a_off..], want.as_slice(),
                "mac: len={} a_off={} x_off={} c={} backend={:?}", len, a_off, x_off, c, backend
            );
        }
    }

    /// The split-table identity the vector kernels are built on:
    /// `c·b = LO[b & 0xF] ⊕ HI[b >> 4]` for every (c, b) pair sampled.
    #[test]
    fn nibble_decomposition_matches_field_multiply(c in any::<u8>(), b in any::<u8>()) {
        let (lo, hi) = skt_encoding::simd::nibble_tables(c);
        prop_assert_eq!(lo[(b & 0x0F) as usize] ^ hi[(b >> 4) as usize], gf256::mul(c, b));
    }

    /// CRC-32C: every available backend advances an arbitrary in-flight
    /// state over arbitrary bytes identically to the table walk.
    #[test]
    fn crc_backends_match_table(
        len in 0usize..600,
        offset in 0usize..33,
        state in any::<u32>(),
        seed in any::<u64>(),
    ) {
        let d = bytes(len + offset, seed);
        let want = crc32c_update(state, &d[offset..], CrcBackend::Table);
        for backend in CrcBackend::available() {
            prop_assert_eq!(
                crc32c_update(state, &d[offset..], backend), want,
                "crc: len={} offset={} backend={:?}", len, offset, backend
            );
        }
    }

    /// CRC state composes over an arbitrary split point on every
    /// backend: update(update(s, a), b) == update(s, a ‖ b). This is
    /// what the <8-byte and <16-byte tails rely on.
    #[test]
    fn crc_update_composes_across_splits(
        len in 0usize..400,
        split_frac in 0usize..101,
        seed in any::<u64>(),
    ) {
        let d = bytes(len, seed);
        let split = len * split_frac / 100;
        for backend in CrcBackend::available() {
            let whole = crc32c_update(!0, &d, backend);
            let stitched = crc32c_update(crc32c_update(!0, &d[..split], backend), &d[split..], backend);
            prop_assert_eq!(whole, stitched, "split={} backend={:?}", split, backend);
        }
    }

    /// The f64-level GF kernels through the `KernelConfig` dispatch:
    /// forced-scalar, forced-SIMD and auto produce identical bits for
    /// arbitrary lengths, scalars and thread/chunk policies.
    #[test]
    fn f64_gf_kernels_are_mode_invariant(
        len in 0usize..300,
        c in any::<u8>(),
        threads in 1usize..5,
        chunk in 1usize..80,
        seed in any::<u64>(),
    ) {
        let base = floats(len, seed);
        let x = floats(len, seed ^ 0x5555);
        let reference = KernelConfig::serial().with_simd(SimdMode::ForceScalar);
        let mut want_scale = base.clone();
        kernels::gf_scale(&mut want_scale, c, reference);
        let mut want_mac = base.clone();
        kernels::gf_mac(&mut want_mac, &x, c, reference);
        for mode in [SimdMode::Auto, SimdMode::ForceScalar, SimdMode::ForceSimd] {
            let cfg = KernelConfig::new(threads, chunk).with_simd(mode);
            let mut got = base.clone();
            kernels::gf_scale(&mut got, c, cfg);
            prop_assert!(
                got.iter().zip(&want_scale).all(|(a, b)| a.to_bits() == b.to_bits()),
                "gf_scale: len={} c={} cfg={:?}", len, c, cfg
            );
            let mut got = base.clone();
            kernels::gf_mac(&mut got, &x, c, cfg);
            prop_assert!(
                got.iter().zip(&want_mac).all(|(a, b)| a.to_bits() == b.to_bits()),
                "gf_mac: len={} c={} cfg={:?}", len, c, cfg
            );
        }
    }

    /// The f64-level CRC through the `KernelConfig` dispatch: identical
    /// across modes and thread/chunk policies (combine-stitched).
    #[test]
    fn f64_crc_is_mode_invariant(
        len in 0usize..300,
        threads in 1usize..5,
        chunk in 1usize..80,
        seed in any::<u64>(),
    ) {
        let d = floats(len, seed);
        let want = crc32c_f64(&d, KernelConfig::serial().with_simd(SimdMode::ForceScalar));
        for mode in [SimdMode::Auto, SimdMode::ForceScalar, SimdMode::ForceSimd] {
            let cfg = KernelConfig::new(threads, chunk).with_simd(mode);
            prop_assert_eq!(crc32c_f64(&d, cfg), want, "len={} cfg={:?}", len, cfg);
        }
    }
}
