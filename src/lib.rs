#![warn(unused)]
//! # self-checkpoint
//!
//! Facade crate for the Self-Checkpoint / SKT-HPL reproduction (PPoPP'17,
//! Tang et al., Tsinghua). Re-exports every workspace crate under one
//! namespace so examples and downstream users can depend on a single
//! package.
//!
//! * [`core`] — the paper's contribution: the self-checkpoint protocol and
//!   its single/double-checkpoint baselines.
//! * [`encoding`] — stripe-based RAID-5/6-style group parity codecs.
//! * [`mps`] — thread-based message-passing substrate (MPI stand-in).
//! * [`cluster`] — virtual cluster: nodes, persistent SHM, devices,
//!   failure injection.
//! * [`hpl`] — distributed High-Performance Linpack and SKT-HPL.
//! * [`ftsim`] — master daemon, fail-detect-restart cycle, disk-based
//!   baselines.
//! * [`linalg`] — dense kernels (dgemm, LU, solves).
//! * [`models`] — analytic models (memory equations, HPL efficiency
//!   model, TOP500 data).
//!
//! # Example: protect, fail, recover
//!
//! ```
//! use self_checkpoint::cluster::{Cluster, ClusterConfig, Ranklist};
//! use self_checkpoint::core::{CkptConfig, Checkpointer, Method, Recovery};
//! use self_checkpoint::mps::run_on_cluster;
//! use std::sync::Arc;
//!
//! let cluster = Arc::new(Cluster::new(ClusterConfig::new(4, 1)));
//! let mut ranklist = Ranklist::round_robin(4, 4);
//!
//! // run once: every rank fills its workspace and checkpoints it
//! run_on_cluster(Arc::clone(&cluster), &ranklist, |ctx| {
//!     let (mut ck, _) = Checkpointer::init(
//!         ctx.world(),
//!         CkptConfig::new("demo", Method::SelfCkpt, 256, 16),
//!     );
//!     {
//!         let ws = ck.workspace();
//!         ws.write().as_f64_mut()[..256].fill(ctx.world_rank() as f64);
//!     }
//!     ck.make(b"state")?;
//!     Ok(())
//! })
//! .unwrap();
//!
//! // a node is lost: its memory (checkpoints included) is gone
//! cluster.kill_node(2);
//! cluster.reset_abort();
//! ranklist.repair(&cluster).unwrap();
//!
//! // relaunch: survivors re-attach, the lost shard is rebuilt from parity
//! let outs = run_on_cluster(cluster, &ranklist, |ctx| {
//!     let (mut ck, _) = Checkpointer::init(
//!         ctx.world(),
//!         CkptConfig::new("demo", Method::SelfCkpt, 256, 16),
//!     );
//!     let rec = ck.recover().expect("single loss is recoverable");
//!     let ws = ck.workspace();
//!     let v = ws.read().as_f64()[0];
//!     Ok((rec, v))
//! })
//! .unwrap();
//! for (rank, (rec, v)) in outs.iter().enumerate() {
//!     assert!(matches!(rec, Recovery::Restored { epoch: 1, .. }));
//!     assert_eq!(*v, rank as f64, "rank {rank}'s data restored");
//! }
//! ```

pub use skt_cluster as cluster;
pub use skt_core as core;
pub use skt_encoding as encoding;
pub use skt_ftsim as ftsim;
pub use skt_hpl as hpl;
pub use skt_linalg as linalg;
pub use skt_models as models;
pub use skt_mps as mps;
pub use skt_sim as sim;
